/**
 * @file
 * neo::faultinject — deterministic bit-flip injection into named control
 * arrays, the test hook of the integrity-hardened serving mode
 * (common/integrity.h). Production code marks its injection points with
 * corrupt()/corruptTiles() calls between the seal and verify fences of a
 * control structure; a test arms one flip with armBitFlip() and the next
 * matching point execution flips exactly one RNG-chosen bit, then
 * disarms itself. Disarmed, a point costs one relaxed atomic load.
 *
 * Determinism: the flipped (element, byte, bit) is a pure function of the
 * arming seed. For points executed inside parallel regions (the per-tile
 * CSR fence), arm with an explicit element index — "first execution wins"
 * would race between workers; with a pinned (point, index) the flip lands
 * identically at any thread count.
 */

#ifndef NEO_COMMON_FAULTINJECT_H
#define NEO_COMMON_FAULTINJECT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neo::faultinject
{

/** Description of the most recent injected flip (for test assertions). */
struct Injection
{
    std::string point;
    int64_t index = -1;
    size_t elem = 0; //!< element whose bytes were flipped
    size_t byte = 0; //!< byte offset within the element
    int bit = 0;     //!< flipped bit within that byte
    uint64_t domain = 0; //!< fault domain the flip landed in
};

/**
 * Arm one single-bit flip at injection point @p point. The flip fires on
 * the next corrupt() call whose point name matches and whose index
 * matches @p index (or on the first non-empty call when @p index < 0),
 * then the hook disarms itself. @p seed selects the element/byte/bit
 * deterministically.
 *
 * @p domain pins the flip to one fault domain (see DomainScope): with
 * domain >= 0 only corrupt() calls executing inside that domain's scope
 * can fire it — the multi-session server scopes each session's frame
 * work, so an armed flip lands in exactly the targeted session's state.
 * The default (-1) matches any domain, preserving single-renderer tests.
 */
void armBitFlip(const char *point, int64_t index = -1, uint64_t seed = 1,
                int64_t domain = -1);

/** Fault domain of the calling thread (0 outside any DomainScope). */
uint64_t currentDomain();

/**
 * RAII fault-domain scope (thread-local): injection points executed
 * while the scope is live — including from pool workers only when they
 * scope themselves, which they don't — belong to domain @p domain.
 * Parallel-region injection points (the per-tile CSR fence) run on
 * workers outside the scope; domain-pinned arming therefore targets the
 * frame-control-thread fences, which is where the session layer injects.
 */
class DomainScope
{
  public:
    explicit DomainScope(uint64_t domain);
    ~DomainScope();
    DomainScope(const DomainScope &) = delete;
    DomainScope &operator=(const DomainScope &) = delete;

  private:
    uint64_t prev_;
};

/** Cancel a pending flip. */
void disarm();

/** True while a flip is armed and has not fired yet. */
bool pending();

/** Total flips fired since process start. */
uint64_t injectionCount();

/** Copy the most recent injection into @p out; false if none fired yet. */
bool lastInjection(Injection *out);

/**
 * Injection point: when armed for (@p point, @p index), flip one bit of
 * @p data and disarm. The array is @p elems elements of @p stride bytes;
 * only the first @p semantic_bytes of each element are candidate targets,
 * so padding bytes (invisible to field-aware digests) and trap-prone
 * fields can be excluded. No-op while disarmed.
 */
void corrupt(const char *point, int64_t index, void *data, size_t elems,
             size_t stride, size_t semantic_bytes);

/**
 * Byte count of an element that is a legitimate flip target. Defaults to
 * the whole element; specialized for padded types (e.g. TileEntry flips
 * only its id/depth bytes — padding is not covered by the digest, and a
 * multi-bit bool is undefined behavior, so neither is a valid fault
 * model target).
 */
template <typename T>
struct SemanticBytes
{
    static constexpr size_t value = sizeof(T);
};

/**
 * Injection point over a per-tile structure: element index = tile index,
 * one corrupt() call per non-empty tile. The pending() fast path keeps
 * the disarmed cost at one atomic load for the whole structure.
 */
template <typename T>
void
corruptTiles(const char *point, std::vector<std::vector<T>> &tiles)
{
    if (!pending())
        return;
    for (size_t t = 0; t < tiles.size(); ++t)
        if (!tiles[t].empty())
            corrupt(point, static_cast<int64_t>(t), tiles[t].data(),
                    tiles[t].size(), sizeof(T), SemanticBytes<T>::value);
}

/**
 * Injection point over a flat array (the feature SoA fences and the
 * attest-mode frame pixels): element index 0, one corrupt() call for the
 * whole span.
 */
template <typename T>
void
corruptSpan(const char *point, std::vector<T> &data)
{
    if (!pending() || data.empty())
        return;
    corrupt(point, 0, data.data(), data.size(), sizeof(T),
            SemanticBytes<T>::value);
}

} // namespace neo::faultinject

#endif // NEO_COMMON_FAULTINJECT_H
