#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace neo
{

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (pct <= 0.0)
        return values.front();
    if (pct >= 100.0)
        return values.back();
    double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
percentile(const std::vector<float> &values, double pct)
{
    std::vector<double> d(values.begin(), values.end());
    return percentile(std::move(d), pct);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

std::vector<CdfPoint>
empiricalCdf(std::vector<double> values, size_t resolution)
{
    std::vector<CdfPoint> cdf;
    if (values.empty() || resolution == 0)
        return cdf;
    std::sort(values.begin(), values.end());
    double lo = values.front();
    double hi = values.back();
    if (hi <= lo) {
        cdf.push_back({lo, 1.0});
        return cdf;
    }
    cdf.reserve(resolution);
    for (size_t i = 0; i < resolution; ++i) {
        double v = lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(resolution - 1);
        auto it = std::upper_bound(values.begin(), values.end(), v);
        double frac = static_cast<double>(it - values.begin()) /
                      static_cast<double>(values.size());
        cdf.push_back({v, frac});
    }
    return cdf;
}

double
fractionAtLeast(const std::vector<double> &values, double threshold)
{
    if (values.empty())
        return 0.0;
    size_t n = 0;
    for (double v : values)
        if (v >= threshold)
            ++n;
    return static_cast<double>(n) / static_cast<double>(values.size());
}

void
RunningSummary::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
}

void
Histogram::add(double v)
{
    if (counts_.empty())
        return;
    double t = (v - lo_) / (hi_ - lo_);
    t = std::min(std::max(t, 0.0), 1.0);
    size_t bin = std::min(static_cast<size_t>(t * counts_.size()),
                          counts_.size() - 1);
    ++counts_[bin];
    ++total_;
}

double
Histogram::binCenter(size_t i) const
{
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(i) + 0.5);
}

double
Histogram::binFraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string
sparkline(const std::vector<double> &values)
{
    static const char *kLevels[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};
    if (values.empty())
        return "";
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    std::string out;
    for (double v : values) {
        int idx = 0;
        if (hi > lo)
            idx = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
        out += kLevels[std::min(std::max(idx, 0), 7)];
    }
    return out;
}

} // namespace neo
