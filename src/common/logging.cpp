#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace neo
{

namespace
{
bool g_verbose = false;

void
vprint(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
inform(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace neo
