#include "common/env.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#include "common/logging.h"

namespace neo::env
{

namespace
{

/** Knob names that have already produced their one warning. */
std::mutex g_mutex;
std::set<std::string> g_warned;

bool
shouldWarn(const char *name)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_warned.insert(name).second;
}

} // namespace

bool
parseLong(const char *text, long *out)
{
    if (!text || text[0] == '\0' || !out)
        return false;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseDouble(const char *text, double *out)
{
    if (!text || text[0] == '\0' || !out)
        return false;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        return false;
    *out = v;
    return true;
}

long
envLong(const char *name, long def, long lo, long hi)
{
    const char *text = std::getenv(name);
    if (!text || text[0] == '\0')
        return def;
    long v = 0;
    if (!parseLong(text, &v) || v < lo || v > hi) {
        if (shouldWarn(name))
            warn("%s='%s' is not an integer in [%ld, %ld]; using %ld",
                 name, text, lo, hi, def);
        return def;
    }
    return v;
}

double
envDouble(const char *name, double def, double lo, double hi)
{
    const char *text = std::getenv(name);
    if (!text || text[0] == '\0')
        return def;
    double v = 0.0;
    // NaN fails both range comparisons by design.
    if (!parseDouble(text, &v) || !(v >= lo) || !(v <= hi)) {
        if (shouldWarn(name))
            warn("%s='%s' is not a number in [%g, %g]; using %g", name,
                 text, lo, hi, def);
        return def;
    }
    return v;
}

int
envChoice(const char *name, const char *const *choices, int count,
          int def)
{
    const char *text = std::getenv(name);
    if (!text || text[0] == '\0')
        return def;
    for (int i = 0; i < count; ++i) {
        if (std::strcmp(text, choices[i]) == 0)
            return i;
    }
    if (shouldWarn(name)) {
        std::string valid;
        for (int i = 0; i < count; ++i) {
            if (i)
                valid += ",";
            valid += choices[i];
        }
        warn("%s='%s' is not one of {%s}; using %s", name, text,
             valid.c_str(), choices[def]);
    }
    return def;
}

bool
shouldWarnOnce(const char *name)
{
    return shouldWarn(name);
}

void
resetWarnings()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_warned.clear();
}

} // namespace neo::env
