#include "common/faultinject.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

namespace neo::faultinject
{

namespace
{

/** splitmix64 step — the deterministic element/byte/bit selector. */
uint64_t
splitmix(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// Fast-path gate (checked without the lock) plus the armed-flip record.
std::atomic<bool> g_pending{false};
std::mutex g_mutex;
std::string g_point;
int64_t g_index = -1;
uint64_t g_seed = 1;
int64_t g_domain = -1;
uint64_t g_count = 0;
Injection g_last;
bool g_has_last = false;

/** Fault domain of the calling thread (0 outside any DomainScope). */
thread_local uint64_t t_domain = 0;

} // namespace

void
armBitFlip(const char *point, int64_t index, uint64_t seed, int64_t domain)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_point = point;
    g_index = index;
    g_seed = seed;
    g_domain = domain;
    g_pending.store(true, std::memory_order_release);
}

uint64_t
currentDomain()
{
    return t_domain;
}

DomainScope::DomainScope(uint64_t domain) : prev_(t_domain)
{
    t_domain = domain;
}

DomainScope::~DomainScope()
{
    t_domain = prev_;
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_pending.store(false, std::memory_order_release);
}

bool
pending()
{
    return g_pending.load(std::memory_order_acquire);
}

uint64_t
injectionCount()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_count;
}

bool
lastInjection(Injection *out)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_has_last)
        return false;
    if (out)
        *out = g_last;
    return true;
}

void
corrupt(const char *point, int64_t index, void *data, size_t elems,
        size_t stride, size_t semantic_bytes)
{
    if (!g_pending.load(std::memory_order_acquire))
        return;
    if (!data || elems == 0 || semantic_bytes == 0 ||
        semantic_bytes > stride)
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_pending.load(std::memory_order_relaxed))
        return; // another worker fired the flip first
    if (g_point != point || (g_index >= 0 && g_index != index))
        return;
    if (g_domain >= 0 && static_cast<uint64_t>(g_domain) != t_domain)
        return; // flip pinned to a different fault domain

    uint64_t state = g_seed;
    const size_t elem = static_cast<size_t>(splitmix(state) % elems);
    const size_t byte =
        static_cast<size_t>(splitmix(state) % semantic_bytes);
    const int bit = static_cast<int>(splitmix(state) % 8);
    static_cast<unsigned char *>(data)[elem * stride + byte] ^=
        static_cast<unsigned char>(1u << bit);

    g_last = Injection{point, index, elem, byte, bit, t_domain};
    g_has_last = true;
    ++g_count;
    g_pending.store(false, std::memory_order_release);
}

// --- Network fault domain ----------------------------------------------

namespace
{

// Armed short-write state, independent of the bit-flip machinery so a
// chaos test can hold both armed at once.
std::atomic<bool> g_sw_pending{false};
std::mutex g_sw_mutex;
std::string g_sw_point;
int64_t g_sw_conn = -1;
uint64_t g_sw_seed = 1;
int g_sw_count = 0;
uint64_t g_sw_fired = 0;

/**
 * Adversarial offset into a @p len-byte buffer: a seeded choice among
 * the positions a framed parser mishandles when it mishandles anything
 * — inside the 4-byte magic, one byte either side of the header/payload
 * boundary, the midpoint, and the final byte.
 */
size_t
adversarialOffset(uint64_t &state, size_t len, size_t frame_size)
{
    size_t candidates[8];
    size_t n = 0;
    const size_t cut[] = {1,
                          3,
                          frame_size > 0 ? frame_size - 1 : 0,
                          frame_size,
                          frame_size + 1,
                          len / 2,
                          len > 0 ? len - 1 : 0};
    for (size_t c : cut)
        if (c > 0 && c < len)
            candidates[n++] = c;
    if (n == 0)
        return len / 2;
    return candidates[splitmix(state) % n];
}

} // namespace

const char *
netFaultName(NetFault fault)
{
    switch (fault) {
    case NetFault::None:
        return "none";
    case NetFault::TornWrite:
        return "torn-write";
    case NetFault::Garbage:
        return "garbage";
    case NetFault::Disconnect:
        return "disconnect";
    case NetFault::Stall:
        return "stall";
    }
    return "none";
}

NetFaultPlan
planNetFault(NetFault kind, uint64_t seed, size_t len, size_t frame_size,
             double stall_ms)
{
    NetFaultPlan plan;
    plan.kind = kind;
    plan.prefix = len;
    if (len == 0)
        return plan;

    uint64_t state = seed ^ (static_cast<uint64_t>(len) << 32) ^
                     static_cast<uint64_t>(kind);
    switch (kind) {
    case NetFault::None:
        break;
    case NetFault::TornWrite: {
        // 1-3 splits, deduplicated and sorted: every segment lands in a
        // separate send() so the receiver reassembles across reads.
        const int pieces = 1 + static_cast<int>(splitmix(state) % 3);
        for (int i = 0; i < pieces; ++i) {
            const size_t off = adversarialOffset(state, len, frame_size);
            bool dup = false;
            for (size_t s : plan.splits)
                dup = dup || s == off;
            if (!dup && off > 0 && off < len)
                plan.splits.push_back(off);
        }
        std::sort(plan.splits.begin(), plan.splits.end());
        break;
    }
    case NetFault::Garbage: {
        plan.garbage =
            netGarbageBytes(splitmix(state),
                            1 + static_cast<size_t>(splitmix(state) % 16));
        plan.garbage_offset = adversarialOffset(state, len, frame_size);
        break;
    }
    case NetFault::Disconnect:
        plan.prefix = adversarialOffset(state, len, frame_size);
        break;
    case NetFault::Stall:
        plan.prefix = adversarialOffset(state, len, frame_size);
        plan.stall_ms = stall_ms;
        break;
    }
    return plan;
}

std::vector<uint8_t>
netGarbageBytes(uint64_t seed, size_t n)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(n);
    uint64_t state = seed;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t r = splitmix(state);
        // One byte in four is a magic-prefix byte ('N'/'E'/'O'/'W'),
        // so runs of garbage regularly fake the start of a frame and
        // force the parser's resync scan to reject a partial match
        // instead of skipping obvious noise.
        if (r % 4 == 0) {
            constexpr uint8_t kMagicBytes[4] = {0x4E, 0x45, 0x4F, 0x57};
            bytes.push_back(kMagicBytes[(r >> 8) % 4]);
        } else {
            bytes.push_back(static_cast<uint8_t>(r >> 16));
        }
    }
    return bytes;
}

void
armShortWrite(const char *point, int64_t conn, uint64_t seed, int count)
{
    std::lock_guard<std::mutex> lock(g_sw_mutex);
    g_sw_point = point;
    g_sw_conn = conn;
    g_sw_seed = seed;
    g_sw_count = count;
    g_sw_pending.store(count > 0, std::memory_order_release);
}

size_t
writeBudget(const char *point, int64_t conn, size_t want)
{
    if (!g_sw_pending.load(std::memory_order_acquire))
        return want;
    std::lock_guard<std::mutex> lock(g_sw_mutex);
    if (g_sw_count <= 0 || g_sw_point != point ||
        (g_sw_conn >= 0 && g_sw_conn != conn))
        return want;
    if (want < 2)
        return want; // nothing to shorten
    const size_t budget =
        1 + static_cast<size_t>(splitmix(g_sw_seed) % (want - 1));
    ++g_sw_fired;
    if (--g_sw_count <= 0)
        g_sw_pending.store(false, std::memory_order_release);
    return budget;
}

void
disarmShortWrite()
{
    std::lock_guard<std::mutex> lock(g_sw_mutex);
    g_sw_count = 0;
    g_sw_pending.store(false, std::memory_order_release);
}

uint64_t
shortWriteCount()
{
    std::lock_guard<std::mutex> lock(g_sw_mutex);
    return g_sw_fired;
}

// --- Durability fault domain --------------------------------------------

namespace
{

// Armed durable-fault state, independent of the other domains so a
// recovery test can hold a bit flip and a torn write armed at once.
std::atomic<bool> g_df_pending{false};
std::mutex g_df_mutex;
std::string g_df_point;
DurableFault g_df_kind = DurableFault::None;
uint64_t g_df_seed = 1;
int64_t g_df_at = -1;
uint64_t g_df_fired = 0;

/** True (under g_df_mutex) when the armed fault matches; burns it. */
bool
takeDurableFault(const char *point, DurableFault kind)
{
    if (g_df_kind != kind || g_df_point != point)
        return false;
    g_df_pending.store(false, std::memory_order_release);
    g_df_kind = DurableFault::None;
    ++g_df_fired;
    return true;
}

} // namespace

const char *
durableFaultName(DurableFault fault)
{
    switch (fault) {
    case DurableFault::None:
        return "none";
    case DurableFault::TornWrite:
        return "torn-write";
    case DurableFault::FlipBit:
        return "flip-bit";
    case DurableFault::AbortRename:
        return "abort-rename";
    }
    return "none";
}

void
armDurableFault(const char *point, DurableFault kind, uint64_t seed,
                int64_t at)
{
    std::lock_guard<std::mutex> lock(g_df_mutex);
    g_df_point = point;
    g_df_kind = kind;
    g_df_seed = seed;
    g_df_at = at;
    g_df_pending.store(kind != DurableFault::None,
                       std::memory_order_release);
}

void
disarmDurableFault()
{
    std::lock_guard<std::mutex> lock(g_df_mutex);
    g_df_kind = DurableFault::None;
    g_df_pending.store(false, std::memory_order_release);
}

bool
durablePending()
{
    return g_df_pending.load(std::memory_order_acquire);
}

uint64_t
durableFaultCount()
{
    std::lock_guard<std::mutex> lock(g_df_mutex);
    return g_df_fired;
}

size_t
durableWriteLimit(const char *point, size_t len)
{
    if (!g_df_pending.load(std::memory_order_acquire))
        return len;
    std::lock_guard<std::mutex> lock(g_df_mutex);
    if (g_df_kind != DurableFault::TornWrite || g_df_point != point)
        return len;
    if (len == 0)
        return len; // nothing to tear; keep the arm for a real write
    size_t cut;
    if (g_df_at >= 0) {
        cut = static_cast<size_t>(g_df_at) < len
                  ? static_cast<size_t>(g_df_at)
                  : len - 1;
    } else {
        uint64_t state = g_df_seed ^ (static_cast<uint64_t>(len) << 32);
        cut = static_cast<size_t>(splitmix(state) % len);
    }
    (void)takeDurableFault(point, DurableFault::TornWrite);
    return cut;
}

void
durableCorrupt(const char *point, uint8_t *data, size_t len)
{
    if (!g_df_pending.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(g_df_mutex);
    if (g_df_kind != DurableFault::FlipBit || g_df_point != point)
        return;
    if (!data || len == 0)
        return; // keep the arm for a non-empty image
    uint64_t state = g_df_seed ^ (static_cast<uint64_t>(len) << 32);
    size_t byte;
    if (g_df_at >= 0) {
        byte = static_cast<size_t>(g_df_at) < len
                   ? static_cast<size_t>(g_df_at)
                   : len - 1;
    } else {
        byte = static_cast<size_t>(splitmix(state) % len);
    }
    const int bit = static_cast<int>(splitmix(state) % 8);
    data[byte] ^= static_cast<uint8_t>(1u << bit);
    (void)takeDurableFault(point, DurableFault::FlipBit);
}

bool
durableAbortRename(const char *point)
{
    if (!g_df_pending.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(g_df_mutex);
    return takeDurableFault(point, DurableFault::AbortRename);
}

} // namespace neo::faultinject
