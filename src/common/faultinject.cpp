#include "common/faultinject.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace neo::faultinject
{

namespace
{

/** splitmix64 step — the deterministic element/byte/bit selector. */
uint64_t
splitmix(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// Fast-path gate (checked without the lock) plus the armed-flip record.
std::atomic<bool> g_pending{false};
std::mutex g_mutex;
std::string g_point;
int64_t g_index = -1;
uint64_t g_seed = 1;
int64_t g_domain = -1;
uint64_t g_count = 0;
Injection g_last;
bool g_has_last = false;

/** Fault domain of the calling thread (0 outside any DomainScope). */
thread_local uint64_t t_domain = 0;

} // namespace

void
armBitFlip(const char *point, int64_t index, uint64_t seed, int64_t domain)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_point = point;
    g_index = index;
    g_seed = seed;
    g_domain = domain;
    g_pending.store(true, std::memory_order_release);
}

uint64_t
currentDomain()
{
    return t_domain;
}

DomainScope::DomainScope(uint64_t domain) : prev_(t_domain)
{
    t_domain = domain;
}

DomainScope::~DomainScope()
{
    t_domain = prev_;
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_pending.store(false, std::memory_order_release);
}

bool
pending()
{
    return g_pending.load(std::memory_order_acquire);
}

uint64_t
injectionCount()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_count;
}

bool
lastInjection(Injection *out)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_has_last)
        return false;
    if (out)
        *out = g_last;
    return true;
}

void
corrupt(const char *point, int64_t index, void *data, size_t elems,
        size_t stride, size_t semantic_bytes)
{
    if (!g_pending.load(std::memory_order_acquire))
        return;
    if (!data || elems == 0 || semantic_bytes == 0 ||
        semantic_bytes > stride)
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_pending.load(std::memory_order_relaxed))
        return; // another worker fired the flip first
    if (g_point != point || (g_index >= 0 && g_index != index))
        return;
    if (g_domain >= 0 && static_cast<uint64_t>(g_domain) != t_domain)
        return; // flip pinned to a different fault domain

    uint64_t state = g_seed;
    const size_t elem = static_cast<size_t>(splitmix(state) % elems);
    const size_t byte =
        static_cast<size_t>(splitmix(state) % semantic_bytes);
    const int bit = static_cast<int>(splitmix(state) % 8);
    static_cast<unsigned char *>(data)[elem * stride + byte] ^=
        static_cast<unsigned char>(1u << bit);

    g_last = Injection{point, index, elem, byte, bit, t_domain};
    g_has_last = true;
    ++g_count;
    g_pending.store(false, std::memory_order_release);
}

} // namespace neo::faultinject
