/**
 * @file
 * Float RGB framebuffer used by the functional renderer and the quality
 * metrics (PSNR / SSIM / LPIPS-proxy). Values are linear [0, 1] RGB.
 */

#ifndef NEO_COMMON_IMAGE_H
#define NEO_COMMON_IMAGE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/math.h"

namespace neo
{

/** Dense row-major RGB image with float channels. */
class Image
{
  public:
    Image() = default;

    /** Allocate a @p width x @p height image cleared to @p fill. */
    Image(int width, int height, Vec3 fill = {0.0f, 0.0f, 0.0f});

    /**
     * Re-initialize to @p width x @p height with every pixel set to
     * @p fill, reusing the existing allocation when it is large enough
     * (the steady-state frame loop re-renders into one Image without
     * per-frame heap churn).
     */
    void reset(int width, int height, Vec3 fill = {0.0f, 0.0f, 0.0f});

    int width() const { return width_; }
    int height() const { return height_; }
    size_t pixelCount() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    const Vec3 &at(int x, int y) const { return data_[index(x, y)]; }
    Vec3 &at(int x, int y) { return data_[index(x, y)]; }

    const std::vector<Vec3> &pixels() const { return data_; }
    std::vector<Vec3> &pixels() { return data_; }

    /** Clamp every channel into [0, 1]. */
    void clampChannels();

    /** Per-pixel mean of |a - b| over all channels. */
    static double meanAbsoluteDifference(const Image &a, const Image &b);

    /**
     * Downsample by 2x with a box filter; odd trailing rows/columns are
     * dropped. Used by the multi-scale perceptual metric.
     */
    Image downsample2x() const;

    /** Luma (Rec. 601) plane of the image. */
    std::vector<float> luma() const;

    /**
     * Write a binary PPM (P6, 8-bit) for eyeballing outputs.
     * @return true on success.
     */
    bool writePpm(const std::string &path) const;

    /**
     * FNV-1a over the raw bit pattern of every pixel channel. THE
     * definition of "bit-identical frames" shared by the determinism
     * tests and the thread-scaling bench; collisions don't matter,
     * sensitivity to any single changed bit does.
     */
    uint64_t contentHash() const;

  private:
    size_t index(int x, int y) const
    {
        return static_cast<size_t>(y) * width_ + x;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<Vec3> data_;
};

} // namespace neo

#endif // NEO_COMMON_IMAGE_H
