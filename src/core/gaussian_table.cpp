#include "core/gaussian_table.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace neo
{

void
TileTableSet::reset(size_t tiles)
{
    tables_.assign(tiles, {});
}

uint64_t
TileTableSet::totalEntries() const
{
    uint64_t n = 0;
    for (const auto &t : tables_)
        n += t.size();
    return n;
}

uint64_t
TileTableSet::validEntries() const
{
    uint64_t n = 0;
    for (const auto &t : tables_)
        for (const auto &e : t)
            if (e.valid)
                ++n;
    return n;
}

std::vector<double>
orderDisplacements(const std::vector<TileEntry> &prev_sorted,
                   const std::vector<TileEntry> &cur_sorted)
{
    std::unordered_map<GaussianId, size_t> prev_pos;
    prev_pos.reserve(prev_sorted.size());
    for (size_t i = 0; i < prev_sorted.size(); ++i)
        prev_pos.emplace(prev_sorted[i].id, i);

    std::vector<double> out;
    out.reserve(cur_sorted.size());
    for (size_t j = 0; j < cur_sorted.size(); ++j) {
        auto it = prev_pos.find(cur_sorted[j].id);
        if (it == prev_pos.end())
            continue;
        out.push_back(std::fabs(static_cast<double>(j) -
                                static_cast<double>(it->second)));
    }
    return out;
}

} // namespace neo
