/**
 * @file
 * Per-tile frame-to-frame membership deltas: which Gaussians newly entered
 * each tile (incoming) and which left (outgoing). In hardware this is the
 * duplication unit's verification step (incoming) and the ITU's cumulative
 * OR over subtile bitmaps (outgoing); functionally both reduce to set
 * differences on the binned tile membership.
 *
 * The tracker also produces the temporal-similarity statistics of the
 * motivation study (Fig. 6: shared-Gaussian proportion per tile; Fig. 7:
 * sort-order displacement percentiles).
 */

#ifndef NEO_CORE_DELTA_TRACKER_H
#define NEO_CORE_DELTA_TRACKER_H

#include <cstdint>
#include <vector>

#include "gs/tiling.h"

namespace neo
{

/** Membership delta of one tile between consecutive frames. */
struct TileDelta
{
    /** Newly visible (tile, Gaussian) pairs with their current depth. */
    std::vector<TileEntry> incoming;
    /** Ids of Gaussians that left the tile, sorted ascending. */
    std::vector<GaussianId> outgoing_ids;
    /** Number of Gaussians that left the tile. */
    uint32_t outgoing = 0;
    /** |prev & cur| / |prev| (1.0 when the previous tile was empty). */
    double retention = 1.0;
    /** Previous tile population (for weighting). */
    uint32_t prev_size = 0;
};

/** Frame-level aggregation of tile deltas. */
struct FrameDelta
{
    std::vector<TileDelta> tiles;
    uint64_t incoming_total = 0;
    uint64_t outgoing_total = 0;
    /** Retention of each previously non-empty tile (Fig. 6 sample set). */
    std::vector<double> tile_retention;

    double meanRetention() const;
};

/** Tracks per-tile membership across frames. */
class DeltaTracker
{
  public:
    /** True before the first observed frame. */
    bool firstFrame() const { return prev_ids_.empty(); }

    /**
     * Compare @p frame against the previously observed frame, emit deltas,
     * and adopt @p frame as the new reference membership.
     */
    FrameDelta observe(const BinnedFrame &frame);

    /** Forget all state. */
    void reset() { prev_ids_.clear(); }

  private:
    /** Per tile: sorted Gaussian ids of the last observed frame. */
    std::vector<std::vector<GaussianId>> prev_ids_;
};

} // namespace neo

#endif // NEO_CORE_DELTA_TRACKER_H
