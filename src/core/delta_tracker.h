/**
 * @file
 * Per-tile frame-to-frame membership deltas: which Gaussians newly entered
 * each tile (incoming) and which left (outgoing). In hardware this is the
 * duplication unit's verification step (incoming) and the ITU's cumulative
 * OR over subtile bitmaps (outgoing); functionally both reduce to set
 * differences on the binned tile membership.
 *
 * The tracker also produces the temporal-similarity statistics of the
 * motivation study (Fig. 6: shared-Gaussian proportion per tile; Fig. 7:
 * sort-order displacement percentiles).
 *
 * Tile deltas are independent, so observe() runs tile-parallel on the
 * deterministic execution layer: tiles write disjoint slots, counters
 * accumulate per chunk, and the `tile_retention` samples are gathered in
 * tile-index order by concatenating the per-chunk sample lists in chunk
 * order — bit-identical to the serial pass for any thread count.
 *
 * Per tile the set differences are computed SoA-style: the entry ids are
 * lifted into {id, entry-index} sort keys (skipping the sort when the
 * list is already id-ascending, as freshly binned frames are), the
 * sorted ids are extracted in a vectorized scan, and one branch-free
 * two-pointer merge against the previous frame's sorted ids emits the
 * outgoing list and the per-entry shared-membership flags in a single
 * O(cur + prev) pass — no per-entry binary-search probing.
 */

#ifndef NEO_CORE_DELTA_TRACKER_H
#define NEO_CORE_DELTA_TRACKER_H

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "gs/tiling.h"

namespace neo
{

class IntegrityContext;

/** Membership delta of one tile between consecutive frames. */
struct TileDelta
{
    /** Newly visible (tile, Gaussian) pairs with their current depth. */
    std::vector<TileEntry> incoming;
    /** Ids of Gaussians that left the tile, sorted ascending. */
    std::vector<GaussianId> outgoing_ids;
    /** Number of Gaussians that left the tile. */
    uint32_t outgoing = 0;
    /** |prev & cur| / |prev| (1.0 when the previous tile was empty). */
    double retention = 1.0;
    /** Previous tile population (for weighting). */
    uint32_t prev_size = 0;

    /** Reset to the default state, keeping vector capacity for reuse. */
    void reset()
    {
        incoming.clear();
        outgoing_ids.clear();
        outgoing = 0;
        retention = 1.0;
        prev_size = 0;
    }
};

/** Frame-level aggregation of tile deltas. */
struct FrameDelta
{
    std::vector<TileDelta> tiles;
    uint64_t incoming_total = 0;
    uint64_t outgoing_total = 0;
    /** Retention of each previously non-empty tile (Fig. 6 sample set). */
    std::vector<double> tile_retention;

    /**
     * Mean of `tile_retention`.
     *
     * Convention: returns 1.0 when `tile_retention` is empty — on the
     * first observed frame (there is no previous membership to compare
     * against) and whenever every previously tracked tile was empty.
     * "No evidence of change" deliberately reads as perfect retention so
     * consumers that scale reuse-repair effort by (1 - retention), such
     * as the Neo timing model's sort-cost estimate, schedule no repair
     * work when nothing is known to have changed.
     */
    double meanRetention() const;
};

/** Tracks per-tile membership across frames. */
class DeltaTracker
{
  public:
    /** True before the first observed frame. */
    bool firstFrame() const { return prev_ids_.empty(); }

    /**
     * Compare @p frame against the previously observed frame, emit deltas,
     * and adopt @p frame as the new reference membership.
     */
    FrameDelta observe(const BinnedFrame &frame);

    /**
     * observe() into caller-owned storage: @p out is cleared and refilled
     * with capacity retained, so a steady-state loop tracks deltas
     * without re-allocating its per-tile buffers every frame.
     */
    void observe(const BinnedFrame &frame, FrameDelta &out);

    /**
     * Worker threads used by observe (resolveThreadCount semantics:
     * 0 defers to NEO_THREADS). Deltas and the tile_retention sequence
     * are bit-identical for any count.
     */
    void setThreads(int threads) { threads_ = resolveThreadCount(threads); }

    /** Effective worker-thread count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Attach an integrity context (nullptr detaches). When enabled, the
     * previous-frame membership buffers are sealed as observe() adopts
     * them and verified at the next observe() entry — the fence spans the
     * whole inter-frame window in which nothing should touch them, so a
     * bit flip there is detected at the start of the following frame.
     */
    void setIntegrity(IntegrityContext *ctx) { integrity_ = ctx; }

    /** Forget all state. */
    void reset()
    {
        prev_ids_.clear();
        scratch_ids_.clear();
        accum_scratch_.clear();
    }

    /** Reference membership of the last observed frame (per tile, sorted
        ascending) — with the persistent tile tables, the complete
        cross-frame state a durable snapshot must carry. */
    const std::vector<std::vector<GaussianId>> &prevIds() const
    {
        return prev_ids_;
    }

    /** Adopt @p ids as the reference membership, as if the frame that
        produced them had just been observed. Restoring an empty set is
        equivalent to reset() (the next observe() is a first frame). */
    void restorePrevIds(std::vector<std::vector<GaussianId>> ids)
    {
        prev_ids_ = std::move(ids);
    }

  private:
    /**
     * Per-worker-chunk accumulator, persistent across frames (chunk
     * indices are stable for a fixed tile count and thread count), so
     * steady-state observation allocates nothing once warm.
     */
    struct ChunkAccum
    {
        uint64_t incoming = 0;
        uint64_t outgoing = 0;
        std::vector<double> retention;
        /** Reused {id:32 | entry index:32} sort keys of the tile in
         *  flight (worker-local, capacity retained across frames). */
        std::vector<uint64_t> keys;
        /** Reused per-entry shared-membership flags of the tile in
         *  flight, indexed by original entry position. */
        std::vector<uint8_t> shared_flag;
    };

    /** Per tile: sorted Gaussian ids of the last observed frame. */
    std::vector<std::vector<GaussianId>> prev_ids_;
    /** Reused buffer for the frame being observed (swapped into prev_). */
    std::vector<std::vector<GaussianId>> scratch_ids_;
    /** Reused per-chunk accumulators. */
    std::vector<ChunkAccum> accum_scratch_;
    int threads_ = resolveThreadCount(0);
    /** Optional integrity fences around prev_ids_ (not owned). */
    IntegrityContext *integrity_ = nullptr;
};

} // namespace neo

#endif // NEO_CORE_DELTA_TRACKER_H
