#include "core/reuse_update.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace neo
{

void
ReuseUpdateSorter::reset()
{
    tables_.reset(0);
    tracker_.reset();
    delta_ = FrameDelta{};
    report_ = ReuseUpdateReport{};
}

void
ReuseUpdateSorter::beginFrame(const BinnedFrame &frame, uint64_t frame_index)
{
    report_ = ReuseUpdateReport{};
    delta_ = tracker_.observe(frame);
    report_.mean_retention = delta_.meanRetention();

    if (tables_.tileCount() != frame.tiles.size()) {
        coldStart(frame);
    } else {
        updateFrame(frame, frame_index);
    }

    report_.table_entries = tables_.totalEntries();
    deferredDepthUpdate(frame);
}

void
ReuseUpdateSorter::coldStart(const BinnedFrame &frame)
{
    // First frame (or a resolution change): build and fully sort every
    // table from scratch, exactly like a conventional pipeline would.
    report_.cold_start = true;
    tables_.reset(frame.tiles.size());
    for (size_t t = 0; t < frame.tiles.size(); ++t) {
        tables_.table(t) = frame.tiles[t];
        fullSortTable(tables_.table(t), &stats_);
    }
    report_.incoming = delta_.incoming_total;
}

void
ReuseUpdateSorter::updateFrame(const BinnedFrame &frame, uint64_t frame_index)
{
    std::vector<TileEntry> merged;
    for (size_t t = 0; t < frame.tiles.size(); ++t) {
        std::vector<TileEntry> &table = tables_.table(t);
        TileDelta &td = delta_.tiles[t];

        // ① Reordering: Dynamic Partial Sorting of the reused table.
        dynamicPartialSort(table, frame_index, dps_, &stats_);

        // ② Insertion: conventional sort of the (small) incoming table.
        std::vector<TileEntry> incoming = td.incoming;
        fullSortTable(incoming, &stats_);

        // ③ Deletion happens inside the same MSU+ pass that merges the
        // incoming table: entries invalidated during the previous frame's
        // rasterization are dropped without any shifting.
        const uint64_t invalid_before = stats_.msu.filtered_invalid;
        msuUpdateTable(table, incoming, merged, &stats_.msu);
        report_.deleted += stats_.msu.filtered_invalid - invalid_before;
        table = std::move(merged);
        merged.clear();

        report_.incoming += incoming.size();
    }
}

void
ReuseUpdateSorter::deferredDepthUpdate(const BinnedFrame &frame)
{
    // ④ Modeled on the Rasterization Engine: while features are being
    // fetched for blending anyway, overwrite each entry's depth with the
    // current frame's value, and clear the valid bit of entries whose
    // footprint no longer intersects the tile (cumulative-OR of the ITU
    // bitmaps). Both take effect for the *next* frame's sorting pass.
    static const std::vector<GaussianId> kNoOutgoing;
    for (size_t t = 0; t < tables_.tileCount(); ++t) {
        const auto &outgoing = delta_.tiles.size() == tables_.tileCount()
                                   ? delta_.tiles[t].outgoing_ids
                                   : kNoOutgoing;
        for (TileEntry &e : tables_.table(t)) {
            if (frame.isVisible(e.id))
                e.depth = frame.featureOf(e.id).depth;
            if (!outgoing.empty() &&
                std::binary_search(outgoing.begin(), outgoing.end(), e.id)) {
                e.valid = false;
                ++report_.outgoing_marked;
            }
        }
    }
}

} // namespace neo
