#include "core/reuse_update.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace neo
{

void
ReuseUpdateSorter::reset()
{
    tables_.reset(0);
    tracker_.reset();
    delta_ = FrameDelta{};
    report_ = ReuseUpdateReport{};
    update_scratch_.clear();
    batches_.clear();
}

void
ReuseUpdateSorter::beginFrame(const BinnedFrame &frame, uint64_t frame_index)
{
    report_ = ReuseUpdateReport{};
    tracker_.observe(frame, delta_);
    report_.mean_retention = delta_.meanRetention();

    if (tables_.tileCount() != frame.tiles.size()) {
        coldStart(frame);
    } else {
        updateFrame(frame, frame_index);
    }

    report_.table_entries = tables_.totalEntries();
    deferredDepthUpdate(frame);
}

void
ReuseUpdateSorter::coldStart(const BinnedFrame &frame)
{
    // First frame (or a resolution change): build and fully sort every
    // table from scratch, exactly like a conventional pipeline would.
    // Each tile's table is independent, so tiles pack into fused weighted
    // batches (one pool dispatch per ~256 entries instead of per tile)
    // with per-chunk counters merged in fixed chunk order — totals are
    // bit-identical to the per-tile loop at any thread count.
    report_.cold_start = true;
    tables_.reset(frame.tiles.size());
    buildWeightedBatchesInto(batches_, frame.tiles.size(), kSortBatchGrain,
                             [&](size_t t) { return frame.tiles[t].size(); });
    std::vector<SortCoreStats> acc(
        parallelChunkCount(batches_.size(), threads_));
    parallelForBatched(batches_, threads_,
                       [&](size_t begin, size_t end, size_t chunk) {
                           for (size_t t = begin; t < end; ++t) {
                               tables_.table(t) = frame.tiles[t];
                               fullSortTable(tables_.table(t), &acc[chunk],
                                             threads_);
                           }
                       });
    for (const SortCoreStats &s : acc)
        stats_ += s;
    report_.incoming = delta_.incoming_total;
}

void
ReuseUpdateSorter::updateFrame(const BinnedFrame &frame, uint64_t frame_index)
{
    // Steps ①-③ touch only tile-local state (the persistent table, the
    // tile's delta, and a per-worker merge buffer), so tiles process in
    // parallel — packed into fused weighted batches (weight = persistent
    // table + incoming entries, i.e. the tile's actual update cost) so
    // the pool dispatches per ~256-entry batch instead of per tile;
    // counters accumulate per chunk and merge in chunk order. The
    // per-chunk scratch persists across frames (grown, never shrunk), so
    // the steady-state update loop reuses its staging and merge buffers
    // instead of reallocating them every frame.
    const size_t tiles = frame.tiles.size();
    buildWeightedBatchesInto(batches_, tiles, kSortBatchGrain,
                             [&](size_t t) {
                                 return tables_.table(t).size() +
                                        delta_.tiles[t].incoming.size();
                             });
    const size_t chunks = parallelChunkCount(batches_.size(), threads_);
    if (update_scratch_.size() < chunks)
        update_scratch_.resize(chunks);
    for (UpdateScratch &s : update_scratch_) {
        s.stats = SortCoreStats{};
        s.incoming = 0;
        s.deleted = 0;
    }
    parallelForBatched(batches_, threads_,
                       [&](size_t begin, size_t end, size_t chunk) {
        UpdateScratch &s = update_scratch_[chunk];
        for (size_t t = begin; t < end; ++t) {
            std::vector<TileEntry> &table = tables_.table(t);
            TileDelta &td = delta_.tiles[t];

            // ① Reordering: Dynamic Partial Sorting of the reused table.
            dynamicPartialSort(table, frame_index, dps_, &s.stats);

            // ② Insertion: conventional sort of the (small) incoming
            // table, staged in the chunk's reusable buffer.
            s.incoming_sorted.assign(td.incoming.begin(),
                                     td.incoming.end());
            fullSortTable(s.incoming_sorted, &s.stats, threads_);

            // ③ Deletion happens inside the same MSU+ pass that merges
            // the incoming table: entries invalidated during the previous
            // frame's rasterization are dropped without any shifting.
            const uint64_t invalid_before = s.stats.msu.filtered_invalid;
            msuUpdateTable(table, s.incoming_sorted, s.merged,
                           &s.stats.msu, threads_);
            s.deleted += s.stats.msu.filtered_invalid - invalid_before;
            // Swap rather than move: the displaced table storage becomes
            // the next merge's output buffer.
            std::swap(table, s.merged);
            s.merged.clear();

            s.incoming += s.incoming_sorted.size();
        }
    });
    for (const UpdateScratch &s : update_scratch_) {
        stats_ += s.stats;
        report_.incoming += s.incoming;
        report_.deleted += s.deleted;
    }
}

void
ReuseUpdateSorter::deferredDepthUpdate(const BinnedFrame &frame)
{
    // ④ Modeled on the Rasterization Engine: while features are being
    // fetched for blending anyway, overwrite each entry's depth with the
    // current frame's value, and clear the valid bit of entries whose
    // footprint no longer intersects the tile (cumulative-OR of the ITU
    // bitmaps). Both take effect for the *next* frame's sorting pass.
    static const std::vector<GaussianId> kNoOutgoing;
    const bool soa = frame.hasFeatureArrays();
    const size_t tiles = tables_.tileCount();
    for (uint64_t marked : parallelForAccumulate<uint64_t>(
             tiles, threads_, [&](size_t begin, size_t end,
                                  uint64_t &m) {
        for (size_t t = begin; t < end; ++t) {
            const auto &outgoing = delta_.tiles.size() == tiles
                                       ? delta_.tiles[t].outgoing_ids
                                       : kNoOutgoing;
            for (TileEntry &e : tables_.table(t)) {
                if (frame.isVisible(e.id))
                    e.depth = soa ? frame.depth[frame.slotOf(e.id)]
                                  : frame.featureOf(e.id).depth;
                if (!outgoing.empty() &&
                    std::binary_search(outgoing.begin(), outgoing.end(),
                                       e.id)) {
                    e.valid = false;
                    ++m;
                }
            }
        }
    }))
        report_.outgoing_marked += marked;
}

} // namespace neo
