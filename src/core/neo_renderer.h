/**
 * @file
 * NeoRenderer — the full 3DGS pipeline with reuse-and-update sorting in
 * place of per-frame re-sorting. This is the primary user-facing class of
 * the library: feed it a scene and a camera per frame and it returns the
 * rendered image (or, for simulation, the frame's workload descriptor with
 * temporal-delta statistics filled in).
 */

#ifndef NEO_CORE_NEO_RENDERER_H
#define NEO_CORE_NEO_RENDERER_H

#include <cstdint>

#include "core/reuse_update.h"
#include "gs/pipeline.h"

namespace neo
{

/** Everything known about one frame rendered by Neo. */
struct NeoFrameReport
{
    FrameStats frame;           //!< functional pipeline counters
    SortCoreStats sort;         //!< sorting-hardware counters this frame
    ReuseUpdateReport reuse;    //!< reuse-and-update summary
};

/** Renderer built around the reuse-and-update sorting strategy. */
class NeoRenderer
{
  public:
    /**
     * @param opts pipeline options; Neo's hardware default is 64-px tiles
     *        with 8-px subtiles (Table 1), so that is the default here too.
     * @param dps Dynamic Partial Sorting tunables.
     */
    explicit NeoRenderer(PipelineOptions opts = neoDefaultOptions(),
                         DynamicPartialConfig dps = {});

    /** Paper Table 1 configuration: 64-px tiles, 8-px subtiles. */
    static PipelineOptions neoDefaultOptions();

    /** Render frame @p frame_index of a camera sequence. */
    Image renderFrame(const GaussianScene &scene, const Camera &camera,
                      uint64_t frame_index, NeoFrameReport *report = nullptr);

    /**
     * Run the pipeline without pixel work and emit the workload descriptor
     * (with incoming/outgoing/retention populated) for the timing models.
     */
    FrameWorkload extractWorkload(const GaussianScene &scene,
                                  const Camera &camera,
                                  uint64_t frame_index);

    /** Reset all cross-frame state (e.g., before a new trajectory). */
    void reset() { sorter_.reset(); }

    const ReuseUpdateSorter &sorter() const { return sorter_; }
    const Renderer &base() const { return base_; }

  private:
    Renderer base_;
    ReuseUpdateSorter sorter_;
};

} // namespace neo

#endif // NEO_CORE_NEO_RENDERER_H
