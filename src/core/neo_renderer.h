/**
 * @file
 * NeoRenderer — the full 3DGS pipeline with reuse-and-update sorting in
 * place of per-frame re-sorting. This is the primary user-facing class of
 * the library: feed it a scene and a camera per frame and it returns the
 * rendered image (or, for simulation, the frame's workload descriptor with
 * temporal-delta statistics filled in).
 *
 * Multi-session factoring: everything scene-immutable and stateless lives
 * in RendererShared (the blocked rasterizer, its scalar reference twin,
 * and the pipeline options) and is shared across N renderers via
 * shared_ptr; everything per-stream (the reuse sorter's persistent
 * tables, the delta tracker, the binned frame, the scratch arena, the
 * integrity context) stays inside each NeoRenderer. The serving layer
 * (src/serve/) builds one RendererShared per scene and hands it to every
 * session's renderer.
 */

#ifndef NEO_CORE_NEO_RENDERER_H
#define NEO_CORE_NEO_RENDERER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/frame_arena.h"
#include "core/reuse_update.h"
#include "gs/pipeline.h"
#include "gs/tile_sort.h"

namespace neo
{

/** Everything known about one frame rendered by Neo. */
struct NeoFrameReport
{
    FrameStats frame;           //!< functional pipeline counters
    SortCoreStats sort;         //!< sorting-hardware counters this frame
    ReuseUpdateReport reuse;    //!< reuse-and-update summary
};

/**
 * The scene-immutable half of a NeoRenderer: the stateless rasterizer
 * pair (blocked kernel + scalar reference twin) and the pipeline options
 * they were built with. Renderer::renderInto is const and takes all
 * per-frame state as arguments, so one RendererShared serves any number
 * of concurrently rendering sessions.
 */
class RendererShared
{
  public:
    explicit RendererShared(PipelineOptions opts);

    const PipelineOptions &options() const { return base_.options(); }
    const Renderer &base() const { return base_; }
    /** Scalar reference-path twin of base() (bit-identical output by the
        determinism contract) — the recovery/attestation render target. */
    const Renderer &reference() const { return reference_; }

  private:
    Renderer base_;
    Renderer reference_;
};

/** Renderer built around the reuse-and-update sorting strategy. */
class NeoRenderer
{
  public:
    /**
     * @param opts pipeline options; Neo's hardware default is 64-px tiles
     *        with 8-px subtiles (Table 1), so that is the default here too.
     * @param dps Dynamic Partial Sorting tunables.
     */
    explicit NeoRenderer(PipelineOptions opts = neoDefaultOptions(),
                         DynamicPartialConfig dps = {});

    /**
     * Build a renderer on top of an existing shared half — the
     * multi-session constructor: every session renderer built from the
     * same @p shared reuses its rasterizers, while all mutable per-stream
     * state (sorter tables, tracker, arena, integrity) is private.
     */
    explicit NeoRenderer(std::shared_ptr<const RendererShared> shared,
                         DynamicPartialConfig dps = {});

    /** Paper Table 1 configuration: 64-px tiles, 8-px subtiles. */
    static PipelineOptions neoDefaultOptions();

    /** Render frame @p frame_index of a camera sequence. */
    Image renderFrame(const GaussianScene &scene, const Camera &camera,
                      uint64_t frame_index, NeoFrameReport *report = nullptr);

    /**
     * renderFrame into a caller-owned image. This is the steady-state
     * frame loop: the binned frame, the binning/raster scratch, and the
     * sorter's persistent tables all live in this renderer and are
     * refilled with capacity retained, so once warm the loop performs
     * zero per-frame heap allocations on the binning/raster path.
     */
    void renderFrameInto(Image &out, const GaussianScene &scene,
                         const Camera &camera, uint64_t frame_index,
                         NeoFrameReport *report = nullptr);

    /**
     * renderFrameInto with a per-stage wall-clock breakdown (monotonic
     * clock) written to @p stages: bin_ms covers binning plus its
     * fences, sort_ms the reuse-and-update sorter (the delta tracker
     * runs inside the sorter's beginFrame, so its cost lands in sort_ms
     * and tracker_ms stays 0), raster_ms rasterization plus any
     * recover-mode re-render or attest cross-render. This is what the
     * serving layer's budget controller and stage watchdogs consume.
     */
    void renderFrameTimed(Image &out, const GaussianScene &scene,
                          const Camera &camera, uint64_t frame_index,
                          StageTimings &stages,
                          NeoFrameReport *report = nullptr);

    /**
     * Degradation path: render this frame from the freshly binned tile
     * lists with a plain per-tile depth sort, leaving the reuse sorter's
     * persistent tables untouched (no reordering, no deferred depth
     * update). The output is bit-identical to a cold-start render of the
     * same camera. Because the skipped update leaves the tables stale,
     * the caller must reset() before the next reuse-path frame — the
     * serving layer does exactly that, trading one full re-sort for a
     * skipped sorter update under deadline pressure.
     */
    void renderFrameDirect(Image &out, const GaussianScene &scene,
                           const Camera &camera, uint64_t frame_index,
                           StageTimings &stages,
                           NeoFrameReport *report = nullptr);

    /**
     * Run the pipeline without pixel work and emit the workload descriptor
     * (with incoming/outgoing/retention populated) for the timing models.
     */
    FrameWorkload extractWorkload(const GaussianScene &scene,
                                  const Camera &camera,
                                  uint64_t frame_index);

    /** Reset all cross-frame state (e.g., before a new trajectory). */
    void reset()
    {
        sorter_.reset();
        integrity_.forgetSeals();
    }

    /**
     * Adopt @p tables / @p prev_ids as the cross-frame sorter state — the
     * durable-recovery path. Seals from the pre-restore state are
     * forgotten (the restored buffers are re-sealed as the next frame
     * adopts them); a subsequent frame with the same tile count resumes
     * the reuse path bit-identically to an uninterrupted run.
     */
    void restorePersistentState(std::vector<std::vector<TileEntry>> tables,
                                std::vector<std::vector<GaussianId>> prev_ids)
    {
        sorter_.restore(std::move(tables), std::move(prev_ids));
        integrity_.forgetSeals();
    }

    const ReuseUpdateSorter &sorter() const { return sorter_; }
    const Renderer &base() const { return shared_->base(); }

    /** The scene-immutable half (shareable across sessions). */
    const std::shared_ptr<const RendererShared> &shared() const
    {
        return shared_;
    }

    /** Effective integrity mode (resolved at construction). */
    IntegrityMode integrityMode() const { return integrity_.mode(); }

    /** Integrity state of this renderer (checks/faults of the last frame
        are also exported into FrameStats::integrity each frame). */
    const IntegrityContext &integrity() const { return integrity_; }

    /** Mutable integrity context (attest-period tuning in tests). */
    IntegrityContext &integrityMutable() { return integrity_; }

    /** Register a callback invoked for every detected fault. */
    void setFaultHandler(FaultHandler handler)
    {
        integrity_.setFaultHandler(std::move(handler));
    }

    /** Binned frame of the most recent render/extract (reused storage). */
    const BinnedFrame &lastBinnedFrame() const { return frame_; }

    /** Scratch arena of the steady-state loop (exposed for tests). */
    const FrameArena &arena() const { return arena_; }

    /**
     * Bytes of capacity retained by the steady-state loop (binned frame
     * plus arena scratch). Constant across a warm loop — the arena-reuse
     * test asserts no regrowth frame over frame.
     */
    size_t retainedScratchBytes() const
    {
        return frame_.capacityBytes() + arena_.retainedBytes();
    }

  private:
    /** Rebin into the reused storage behind the binning + feature-array
        fences. */
    void binStage(const GaussianScene &scene, const Camera &camera,
                  uint64_t frame_index);
    /** Hand the binned frame to the reuse-and-update sorter behind the
        sorting fence. */
    void sortStage(uint64_t frame_index);
    /** Rasterize via @p orderings, then run the recover-mode re-render
        and the attest-mode cross-render when due. @p sort_tables is the
        structure the frame's sorting fence sealed (the sorter's
        persistent tables on the reuse path, the frame's own tile lists
        on the direct path) — the recover re-verify targets it. */
    void rasterStage(Image &out, uint64_t frame_index,
                     const std::vector<std::vector<TileEntry>> &orderings,
                     std::vector<std::vector<TileEntry>> &sort_tables,
                     FrameStats &stats);
    void finishFrame(FrameStats &stats, NeoFrameReport *report);

    const PipelineOptions &opts() const { return shared_->options(); }

    std::shared_ptr<const RendererShared> shared_;
    ReuseUpdateSorter sorter_;
    /** Reused per-frame binning output (cleared, never reallocated). */
    BinnedFrame frame_;
    /** Reused binning/raster scratch. */
    FrameArena arena_;
    /** Reused per-tile sort scratch of the direct (degraded) path. */
    BatchSortScratch direct_sort_scratch_;
    /** Reused attest-mode cross-render target. */
    Image attest_image_;
    /** Integrity fences, shadow copies and fault reports. */
    IntegrityContext integrity_;
};

} // namespace neo

#endif // NEO_CORE_NEO_RENDERER_H
