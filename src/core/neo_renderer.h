/**
 * @file
 * NeoRenderer — the full 3DGS pipeline with reuse-and-update sorting in
 * place of per-frame re-sorting. This is the primary user-facing class of
 * the library: feed it a scene and a camera per frame and it returns the
 * rendered image (or, for simulation, the frame's workload descriptor with
 * temporal-delta statistics filled in).
 */

#ifndef NEO_CORE_NEO_RENDERER_H
#define NEO_CORE_NEO_RENDERER_H

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/frame_arena.h"
#include "core/reuse_update.h"
#include "gs/pipeline.h"

namespace neo
{

/** Everything known about one frame rendered by Neo. */
struct NeoFrameReport
{
    FrameStats frame;           //!< functional pipeline counters
    SortCoreStats sort;         //!< sorting-hardware counters this frame
    ReuseUpdateReport reuse;    //!< reuse-and-update summary
};

/** Renderer built around the reuse-and-update sorting strategy. */
class NeoRenderer
{
  public:
    /**
     * @param opts pipeline options; Neo's hardware default is 64-px tiles
     *        with 8-px subtiles (Table 1), so that is the default here too.
     * @param dps Dynamic Partial Sorting tunables.
     */
    explicit NeoRenderer(PipelineOptions opts = neoDefaultOptions(),
                         DynamicPartialConfig dps = {});

    /** Paper Table 1 configuration: 64-px tiles, 8-px subtiles. */
    static PipelineOptions neoDefaultOptions();

    /** Render frame @p frame_index of a camera sequence. */
    Image renderFrame(const GaussianScene &scene, const Camera &camera,
                      uint64_t frame_index, NeoFrameReport *report = nullptr);

    /**
     * renderFrame into a caller-owned image. This is the steady-state
     * frame loop: the binned frame, the binning/raster scratch, and the
     * sorter's persistent tables all live in this renderer and are
     * refilled with capacity retained, so once warm the loop performs
     * zero per-frame heap allocations on the binning/raster path.
     */
    void renderFrameInto(Image &out, const GaussianScene &scene,
                         const Camera &camera, uint64_t frame_index,
                         NeoFrameReport *report = nullptr);

    /**
     * Run the pipeline without pixel work and emit the workload descriptor
     * (with incoming/outgoing/retention populated) for the timing models.
     */
    FrameWorkload extractWorkload(const GaussianScene &scene,
                                  const Camera &camera,
                                  uint64_t frame_index);

    /** Reset all cross-frame state (e.g., before a new trajectory). */
    void reset()
    {
        sorter_.reset();
        integrity_.forgetSeals();
    }

    const ReuseUpdateSorter &sorter() const { return sorter_; }
    const Renderer &base() const { return base_; }

    /** Effective integrity mode (resolved at construction). */
    IntegrityMode integrityMode() const { return integrity_.mode(); }

    /** Integrity state of this renderer (checks/faults of the last frame
        are also exported into FrameStats::integrity each frame). */
    const IntegrityContext &integrity() const { return integrity_; }

    /** Register a callback invoked for every detected fault. */
    void setFaultHandler(FaultHandler handler)
    {
        integrity_.setFaultHandler(std::move(handler));
    }

    /** Binned frame of the most recent render/extract (reused storage). */
    const BinnedFrame &lastBinnedFrame() const { return frame_; }

    /** Scratch arena of the steady-state loop (exposed for tests). */
    const FrameArena &arena() const { return arena_; }

    /**
     * Bytes of capacity retained by the steady-state loop (binned frame
     * plus arena scratch). Constant across a warm loop — the arena-reuse
     * test asserts no regrowth frame over frame.
     */
    size_t retainedScratchBytes() const
    {
        return frame_.capacityBytes() + arena_.retainedBytes();
    }

  private:
    /** Shared frame preamble: rebin into the reused storage and hand the
        frame to the reuse-and-update sorter. */
    void prepareFrame(const GaussianScene &scene, const Camera &camera,
                      uint64_t frame_index);

    Renderer base_;
    /** Scalar reference-path twin of base_ (bit-identical output by the
        determinism contract) — the recovery re-render target. */
    Renderer reference_;
    ReuseUpdateSorter sorter_;
    /** Reused per-frame binning output (cleared, never reallocated). */
    BinnedFrame frame_;
    /** Reused binning/raster scratch. */
    FrameArena arena_;
    /** Integrity fences, shadow copies and fault reports. */
    IntegrityContext integrity_;
};

} // namespace neo

#endif // NEO_CORE_NEO_RENDERER_H
