/**
 * @file
 * Neo's reuse-and-update sorting (§4 of the paper), implemented as a
 * SortingStrategy so it can be compared head-to-head with the baseline
 * strategies of sort/strategies.h.
 *
 * Per frame T, for every tile:
 *   ① Reordering — Dynamic Partial Sorting of the table carried over from
 *     frame T-1 (whose depths were refreshed during T-1's rasterization,
 *     i.e. they are one frame stale by design).
 *   ② Insertion — Gaussians newly binned into the tile are sorted as a
 *     small conventional sort and merged by the MSU+.
 *   ③ Deletion — entries whose valid bit was cleared during frame T-1's
 *     rasterization (no subtile intersection) are filtered out by the
 *     MSU+ during the same merge pass; no shifting ever happens.
 *   ④ Deferred depth update — after the orderings are produced, depths of
 *     visible entries are overwritten with frame-T values, and entries
 *     that left the tile this frame are marked invalid, to be deleted at
 *     frame T+1. This models the Rasterization Engine's piggybacked table
 *     write-back.
 */

#ifndef NEO_CORE_REUSE_UPDATE_H
#define NEO_CORE_REUSE_UPDATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/delta_tracker.h"
#include "core/gaussian_table.h"
#include "sort/dynamic_partial.h"
#include "sort/strategies.h"

namespace neo
{

/** Per-frame summary counters of the reuse-and-update flow. */
struct ReuseUpdateReport
{
    uint64_t table_entries = 0;     //!< persistent-table entries touched
    uint64_t incoming = 0;          //!< inserted this frame
    uint64_t outgoing_marked = 0;   //!< marked invalid this frame
    uint64_t deleted = 0;           //!< filtered by the MSU+ this frame
    double mean_retention = 1.0;    //!< Fig. 6 statistic for this frame
    bool cold_start = false;        //!< true when a full sort was needed
};

/** Reuse-and-update sorting strategy (Neo software algorithm). */
class ReuseUpdateSorter : public SortingStrategy
{
  public:
    explicit ReuseUpdateSorter(DynamicPartialConfig dps = {}) : dps_(dps) {}

    std::string name() const override { return "reuse-update"; }

    void beginFrame(const BinnedFrame &frame, uint64_t frame_index) override;

    /** One knob drives every threaded stage, including delta tracking. */
    void setThreads(int threads) override
    {
        SortingStrategy::setThreads(threads);
        tracker_.setThreads(threads);
    }

    /** Fences the tracker's prev-id buffers (tables are fenced by the
        owner, which knows the stage boundaries around beginFrame). */
    void setIntegrity(IntegrityContext *ctx) override
    {
        tracker_.setIntegrity(ctx);
    }

    const std::vector<TileEntry> &tileOrder(int tile) const override
    {
        return tables_.table(tile);
    }

    const std::vector<std::vector<TileEntry>> &orderings() const override
    {
        return tables_.tables();
    }

    /** Summary of the most recent frame. */
    const ReuseUpdateReport &lastReport() const { return report_; }

    /** Membership delta of the most recent frame. */
    const FrameDelta &lastDelta() const { return delta_; }

    const DynamicPartialConfig &config() const { return dps_; }

    /** Persistent tables (exposed for tests and the workload harness). */
    const TileTableSet &tables() const { return tables_; }

    /** Mutable tables — the integrity owner's restore path needs to be
        able to write a recovered tile back in place. */
    TileTableSet &mutableTables() { return tables_; }

    /** Delta tracker's reference membership (durable-snapshot source). */
    const std::vector<std::vector<GaussianId>> &trackerPrevIds() const
    {
        return tracker_.prevIds();
    }

    /**
     * Adopt @p tables / @p prev_ids as the cross-frame state, as if the
     * frame that produced them had just completed. The next beginFrame
     * with a matching tile count takes the reuse path and produces
     * orderings bit-identical to an uninterrupted run; a mismatched tile
     * count cold-starts exactly as it would have before the restore.
     */
    void restore(std::vector<std::vector<TileEntry>> tables,
                 std::vector<std::vector<GaussianId>> prev_ids)
    {
        tables_.tables() = std::move(tables);
        tracker_.restorePrevIds(std::move(prev_ids));
    }

    /** Forget all cross-frame state. */
    void reset();

  private:
    void coldStart(const BinnedFrame &frame);
    void updateFrame(const BinnedFrame &frame, uint64_t frame_index);
    void deferredDepthUpdate(const BinnedFrame &frame);

    /**
     * Per-worker-chunk working memory of updateFrame, persistent across
     * frames: the sorted-incoming staging buffer, the MSU+ merge output
     * (whose storage is swapped with the tile table each merge, so the
     * two buffers recycle each other), and the frame's chunk-local
     * counters. Chunk indices are stable across frames for a fixed
     * (tile count, threads), which is what makes the reuse sound.
     */
    struct UpdateScratch
    {
        SortCoreStats stats;
        uint64_t incoming = 0;
        uint64_t deleted = 0;
        std::vector<TileEntry> incoming_sorted;
        std::vector<TileEntry> merged;
    };

    DynamicPartialConfig dps_;
    TileTableSet tables_;
    DeltaTracker tracker_;
    FrameDelta delta_;
    ReuseUpdateReport report_;
    std::vector<UpdateScratch> update_scratch_;
    /** Fused tile batches of the current frame (see parallelForBatched):
        rebuilt each frame from the per-tile work weights, reusing
        capacity. */
    std::vector<ParallelRange> batches_;
};

} // namespace neo

#endif // NEO_CORE_REUSE_UPDATE_H
