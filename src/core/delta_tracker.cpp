#include "core/delta_tracker.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace neo
{

double
FrameDelta::meanRetention() const
{
    return tile_retention.empty() ? 1.0 : mean(tile_retention);
}

FrameDelta
DeltaTracker::observe(const BinnedFrame &frame)
{
    const size_t tiles = frame.tiles.size();
    FrameDelta delta;
    delta.tiles.resize(tiles);

    const bool have_prev = prev_ids_.size() == tiles;
    std::vector<std::vector<GaussianId>> cur_ids(tiles);

    for (size_t t = 0; t < tiles; ++t) {
        const auto &entries = frame.tiles[t];
        auto &ids = cur_ids[t];
        ids.reserve(entries.size());
        for (const auto &e : entries)
            ids.push_back(e.id);
        std::sort(ids.begin(), ids.end());

        TileDelta &td = delta.tiles[t];
        if (!have_prev) {
            // Everything is incoming on the first frame.
            td.incoming = entries;
            td.prev_size = 0;
            delta.incoming_total += entries.size();
            continue;
        }

        const auto &prev = prev_ids_[t];
        td.prev_size = static_cast<uint32_t>(prev.size());

        // Incoming: in cur, not in prev. Walk the entries (not cur_ids) so
        // the incoming list carries depths; membership test via binary
        // search on the sorted previous ids.
        for (const auto &e : entries) {
            if (!std::binary_search(prev.begin(), prev.end(), e.id))
                td.incoming.push_back(e);
        }
        delta.incoming_total += td.incoming.size();

        // Outgoing: in prev, not in cur (prev is sorted, so the result is
        // sorted as well).
        for (GaussianId id : prev) {
            if (!std::binary_search(ids.begin(), ids.end(), id))
                td.outgoing_ids.push_back(id);
        }
        td.outgoing = static_cast<uint32_t>(td.outgoing_ids.size());
        delta.outgoing_total += td.outgoing;

        if (!prev.empty()) {
            uint32_t shared =
                static_cast<uint32_t>(prev.size()) - td.outgoing;
            td.retention =
                static_cast<double>(shared) / static_cast<double>(prev.size());
            delta.tile_retention.push_back(td.retention);
        }
    }

    prev_ids_ = std::move(cur_ids);
    return delta;
}

} // namespace neo
