#include "core/delta_tracker.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/frame_arena.h"
#include "common/stats.h"

namespace neo
{

double
FrameDelta::meanRetention() const
{
    return tile_retention.empty() ? 1.0 : mean(tile_retention);
}

FrameDelta
DeltaTracker::observe(const BinnedFrame &frame)
{
    FrameDelta delta;
    observe(frame, delta);
    return delta;
}

void
DeltaTracker::observe(const BinnedFrame &frame, FrameDelta &out)
{
    const size_t tiles = frame.tiles.size();
    if (out.tiles.size() != tiles)
        out.tiles.resize(tiles);
    out.incoming_total = 0;
    out.outgoing_total = 0;
    out.tile_retention.clear();

    const bool have_prev = prev_ids_.size() == tiles;
    clearNested(scratch_ids_, tiles);

    // Tiles write disjoint slots of out.tiles / scratch_ids_, so chunks of
    // the tile range process concurrently; the totals accumulate per chunk
    // and the retention samples concatenate in chunk order, which is
    // tile-index order because chunks cover contiguous ascending ranges.
    // The accumulators persist across frames (stable chunk indices), so a
    // warm steady-state loop observes without heap allocation.
    const size_t chunks = parallelChunkCount(tiles, threads_);
    if (accum_scratch_.size() != chunks)
        accum_scratch_.resize(chunks);
    for (ChunkAccum &a : accum_scratch_) {
        a.incoming = 0;
        a.outgoing = 0;
        a.retention.clear();
    }
    parallelFor(tiles, threads_,
                [&](size_t begin, size_t end, size_t chunk) {
        ChunkAccum &a = accum_scratch_[chunk];
        for (size_t t = begin; t < end; ++t) {
            const auto &entries = frame.tiles[t];
            auto &ids = scratch_ids_[t];
            ids.reserve(entries.size());
            for (const auto &e : entries)
                ids.push_back(e.id);
            std::sort(ids.begin(), ids.end());

            TileDelta &td = out.tiles[t];
            td.reset();
            if (!have_prev) {
                // Everything is incoming on the first frame.
                td.incoming = entries;
                a.incoming += entries.size();
                continue;
            }

            const auto &prev = prev_ids_[t];
            td.prev_size = static_cast<uint32_t>(prev.size());

            // Incoming: in cur, not in prev. Walk the entries (not the
            // sorted ids) so the incoming list carries depths; membership
            // test via binary search on the sorted previous ids.
            for (const auto &e : entries) {
                if (!std::binary_search(prev.begin(), prev.end(), e.id))
                    td.incoming.push_back(e);
            }
            a.incoming += td.incoming.size();

            // Outgoing: in prev, not in cur (prev is sorted, so the
            // result is sorted as well).
            for (GaussianId id : prev) {
                if (!std::binary_search(ids.begin(), ids.end(), id))
                    td.outgoing_ids.push_back(id);
            }
            td.outgoing = static_cast<uint32_t>(td.outgoing_ids.size());
            a.outgoing += td.outgoing;

            if (!prev.empty()) {
                uint32_t shared =
                    static_cast<uint32_t>(prev.size()) - td.outgoing;
                td.retention = static_cast<double>(shared) /
                               static_cast<double>(prev.size());
                a.retention.push_back(td.retention);
            }
        }
    });
    for (const ChunkAccum &a : accum_scratch_) {
        out.incoming_total += a.incoming;
        out.outgoing_total += a.outgoing;
        out.tile_retention.insert(out.tile_retention.end(),
                                  a.retention.begin(), a.retention.end());
    }

    // Adopt the new membership; the old prev buffers become the next
    // frame's scratch (capacity retained).
    std::swap(prev_ids_, scratch_ids_);
}

} // namespace neo
