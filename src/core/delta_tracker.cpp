#include "core/delta_tracker.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/frame_arena.h"
#include "common/integrity.h"
#include "common/stats.h"

namespace neo
{

double
FrameDelta::meanRetention() const
{
    return tile_retention.empty() ? 1.0 : mean(tile_retention);
}

FrameDelta
DeltaTracker::observe(const BinnedFrame &frame)
{
    FrameDelta delta;
    observe(frame, delta);
    return delta;
}

void
DeltaTracker::observe(const BinnedFrame &frame, FrameDelta &out)
{
    const size_t tiles = frame.tiles.size();
    if (out.tiles.size() != tiles)
        out.tiles.resize(tiles);
    out.incoming_total = 0;
    out.outgoing_total = 0;
    out.tile_retention.clear();

    // Consumer fence: the previous membership was sealed when the last
    // observe() adopted it, and nothing may have touched it since — any
    // mismatch here is inter-frame corruption (restored from the shadow
    // in recover mode, before the merge below consumes the ids).
    if (integrity_ && integrity_->enabled())
        integrity_->verifyTiles(IntegrityStage::Tracking,
                                kIntegrityTrackerPrevIds, prev_ids_);

    const bool have_prev = prev_ids_.size() == tiles;
    clearNested(scratch_ids_, tiles);

    // Tiles write disjoint slots of out.tiles / scratch_ids_, so chunks of
    // the tile range process concurrently; the totals accumulate per chunk
    // and the retention samples concatenate in chunk order, which is
    // tile-index order because chunks cover contiguous ascending ranges.
    // The accumulators persist across frames (stable chunk indices), so a
    // warm steady-state loop observes without heap allocation.
    const size_t chunks = parallelChunkCount(tiles, threads_);
    if (accum_scratch_.size() != chunks)
        accum_scratch_.resize(chunks);
    for (ChunkAccum &a : accum_scratch_) {
        a.incoming = 0;
        a.outgoing = 0;
        a.retention.clear();
    }
    parallelFor(tiles, threads_,
                [&](size_t begin, size_t end, size_t chunk) {
        ChunkAccum &a = accum_scratch_[chunk];
        for (size_t t = begin; t < end; ++t) {
            const auto &entries = frame.tiles[t];
            const size_t n = entries.size();
            auto &ids = scratch_ids_[t];

            // Sort keys {id : 32 | entry index : 32}: tile ids are
            // unique (the binning scatter replicates a Gaussian at most
            // once per tile), so a plain uint64 compare orders by id
            // and the low half carries the permutation back to the
            // entry-order list. Freshly binned frames arrive already
            // id-ascending and skip the sort via the is_sorted scan.
            std::vector<uint64_t> &keys = a.keys;
            keys.resize(n);
            for (size_t i = 0; i < n; ++i)
                keys[i] =
                    (static_cast<uint64_t>(entries[i].id) << 32) | i;
            if (!std::is_sorted(keys.begin(), keys.end()))
                std::sort(keys.begin(), keys.end());

            // SoA sorted-id extract scan — vectorized (gated by
            // bench/check_vectorization.sh); the result is the tile's
            // reference membership for the next frame.
            ids.resize(n);
            for (size_t i = 0; i < n; ++i)
                ids[i] = static_cast<GaussianId>(keys[i] >> 32);

            TileDelta &td = out.tiles[t];
            td.reset();
            if (!have_prev) {
                // Everything is incoming on the first frame.
                td.incoming = entries;
                a.incoming += n;
                continue;
            }

            const auto &prev = prev_ids_[t];
            const size_t m = prev.size();
            td.prev_size = static_cast<uint32_t>(m);

            // One branch-free two-pointer merge over the two sorted id
            // arrays replaces the historical per-entry binary-search
            // probing: it emits the outgoing ids (in prev, not in cur —
            // prev order, so ascending) and marks per-entry shared
            // membership through the key permutation. The loop body is
            // straight-line — advances, the outgoing emit and the flag
            // write all commit unconditionally and are sized by the
            // comparison masks; a slot written early (while its side
            // has not advanced) is simply overwritten on the advancing
            // visit, so the last write wins with the exact value.
            std::vector<uint8_t> &shared_flag = a.shared_flag;
            shared_flag.resize(n);
            td.outgoing_ids.resize(m); // worst case; shrunk below
            const uint64_t *const kp = keys.data();
            const GaussianId *const pp = prev.data();
            uint8_t *const fp = shared_flag.data();
            GaussianId *const outp = td.outgoing_ids.data();
            size_t i = 0, j = 0, nout = 0;
            while (i < n && j < m) {
                const GaussianId a_id =
                    static_cast<GaussianId>(kp[i] >> 32);
                const GaussianId b_id = pp[j];
                const unsigned le = a_id <= b_id;
                const unsigned ge = b_id <= a_id;
                fp[kp[i] & 0xffffffffu] =
                    static_cast<uint8_t>(le & ge);
                outp[nout] = b_id;
                i += le;
                nout += ge & (le ^ 1u); // b < a: b left the tile
                j += ge;
            }
            for (; i < n; ++i)
                fp[kp[i] & 0xffffffffu] = 0; // cur tail: all incoming
            for (; j < m; ++j)
                outp[nout++] = pp[j]; // prev tail: all outgoing

            td.outgoing_ids.resize(nout);
            td.outgoing = static_cast<uint32_t>(nout);
            a.outgoing += td.outgoing;

            // Incoming: walk the entries in their original order so the
            // list carries depths in entry order, exactly as the
            // probing implementation did.
            for (size_t e = 0; e < n; ++e)
                if (!fp[e])
                    td.incoming.push_back(entries[e]);
            a.incoming += td.incoming.size();

            if (!prev.empty()) {
                uint32_t shared =
                    static_cast<uint32_t>(prev.size()) - td.outgoing;
                td.retention = static_cast<double>(shared) /
                               static_cast<double>(prev.size());
                a.retention.push_back(td.retention);
            }
        }
    });
    for (const ChunkAccum &a : accum_scratch_) {
        out.incoming_total += a.incoming;
        out.outgoing_total += a.outgoing;
        out.tile_retention.insert(out.tile_retention.end(),
                                  a.retention.begin(), a.retention.end());
    }

    // Adopt the new membership; the old prev buffers become the next
    // frame's scratch (capacity retained).
    std::swap(prev_ids_, scratch_ids_);

    // Producer fence: seal what the next frame will compare against.
    // The injection point sits after the seal, so an armed flip lands
    // inside the fenced inter-frame window.
    if (integrity_ && integrity_->enabled()) {
        integrity_->sealTiles(IntegrityStage::Tracking,
                              kIntegrityTrackerPrevIds, prev_ids_);
        faultinject::corruptTiles(kIntegrityTrackerPrevIds, prev_ids_);
    }
}

} // namespace neo
