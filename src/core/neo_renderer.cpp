#include "core/neo_renderer.h"

#include <cstdint>

namespace neo
{

PipelineOptions
NeoRenderer::neoDefaultOptions()
{
    PipelineOptions opts;
    opts.tile_px = 64;
    opts.raster.subtile_size = 8;
    return opts;
}

namespace
{

/** base_'s options with the scalar reference blend forced on. */
PipelineOptions
referenceOptions(PipelineOptions opts)
{
    opts.raster.reference_path = true;
    return opts;
}

} // namespace

NeoRenderer::NeoRenderer(PipelineOptions opts, DynamicPartialConfig dps)
    : base_(opts), reference_(referenceOptions(opts)), sorter_(dps)
{
    // One thread knob drives every stage: binning/projection (binFrame),
    // reuse-and-update sorting (sorter_), and rasterization (base_).
    sorter_.setThreads(opts.threads);
    integrity_.configure(resolveIntegrityMode(opts.integrity));
    if (integrity_.enabled())
        sorter_.setIntegrity(&integrity_);
}

Image
NeoRenderer::renderFrame(const GaussianScene &scene, const Camera &camera,
                         uint64_t frame_index, NeoFrameReport *report)
{
    Image image;
    renderFrameInto(image, scene, camera, frame_index, report);
    return image;
}

void
NeoRenderer::prepareFrame(const GaussianScene &scene, const Camera &camera,
                          uint64_t frame_index)
{
    const bool fenced = integrity_.enabled();
    if (fenced)
        integrity_.beginFrame(frame_index);

    binFrameInto(frame_, arena_, scene, camera, base_.options().tile_px,
                 base_.options().threads);
    if (fenced) {
        // Binning fence: seal the fresh tile lists, expose the injection
        // window, and verify before the sorter consumes them. In recover
        // mode a mismatching tile is restored from the shadow here, so
        // corruption never reaches the persistent tables.
        integrity_.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                             frame_.tiles);
        faultinject::corruptTiles(kIntegrityBinTiles, frame_.tiles);
        integrity_.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                               frame_.tiles);
    }

    // (The tracker's prev-id fence runs inside beginFrame: verified on
    // entry to observe(), re-sealed when the new membership is adopted.)
    sorter_.beginFrame(frame_, frame_index);
    if (fenced) {
        // Sorting fence: the persistent tables are final for this frame
        // once beginFrame returns (the deferred depth update runs inside
        // it); they are the orderings rasterization consumes.
        auto &tables = sorter_.mutableTables().tables();
        integrity_.sealTiles(IntegrityStage::Sorting, kIntegritySortTables,
                             tables);
        faultinject::corruptTiles(kIntegritySortTables, tables);
        integrity_.verifyTiles(IntegrityStage::Sorting,
                               kIntegritySortTables, tables);
    }
}

void
NeoRenderer::renderFrameInto(Image &out, const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index,
                             NeoFrameReport *report)
{
    prepareFrame(scene, camera, frame_index);

    FrameStats stats;
    IntegrityContext *ctx = integrity_.enabled() ? &integrity_ : nullptr;
    base_.renderInto(out, frame_, sorter_.orderings(), &stats, &arena_,
                     ctx);

    if (integrity_.mode() == IntegrityMode::Recover &&
        integrity_.frameFaulted()) {
        // Every faulted structure has already been restored from its
        // digest-verified shadow (or, for the CSR, the tile fell back to
        // the reference blend before any pixel write). Re-rendering the
        // whole frame through the scalar reference path — bit-identical
        // to the blocked kernel by the determinism contract — and
        // re-verifying the fenced inputs turns that contract into
        // end-to-end attestation: the delivered frame hash equals the
        // uncorrupted reference.
        reference_.renderInto(out, frame_, sorter_.orderings(), &stats,
                              nullptr, &integrity_);
        integrity_.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                               frame_.tiles);
        integrity_.verifyTiles(IntegrityStage::Sorting,
                               kIntegritySortTables,
                               sorter_.mutableTables().tables());
        integrity_.markFrameRecovered();
    }
    if (ctx)
        integrity_.exportStats(stats.integrity);

    if (report) {
        report->frame = stats;
        report->sort = sorter_.takeStats();
        report->reuse = sorter_.lastReport();
    } else {
        sorter_.takeStats();
    }
}

FrameWorkload
NeoRenderer::extractWorkload(const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index)
{
    prepareFrame(scene, camera, frame_index);

    FrameWorkload w = base_.workloadFromBinned(frame_, camera.resolution());
    const FrameDelta &delta = sorter_.lastDelta();
    w.incoming_instances = delta.incoming_total;
    w.outgoing_instances = delta.outgoing_total;
    w.mean_tile_retention = delta.meanRetention();
    return w;
}

} // namespace neo
