#include "core/neo_renderer.h"

#include <chrono>
#include <cstdint>
#include <memory>

#include "common/faultinject.h"

namespace neo
{

PipelineOptions
NeoRenderer::neoDefaultOptions()
{
    PipelineOptions opts;
    opts.tile_px = 64;
    opts.raster.subtile_size = 8;
    return opts;
}

namespace
{

/** base_'s options with the scalar reference blend forced on. */
PipelineOptions
referenceOptions(PipelineOptions opts)
{
    opts.raster.reference_path = true;
    return opts;
}

using steady_clock = std::chrono::steady_clock;

double
msSince(steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                     t0)
        .count();
}

} // namespace

RendererShared::RendererShared(PipelineOptions opts)
    : base_(opts), reference_(referenceOptions(opts))
{
}

NeoRenderer::NeoRenderer(PipelineOptions opts, DynamicPartialConfig dps)
    : NeoRenderer(std::make_shared<const RendererShared>(opts), dps)
{
}

NeoRenderer::NeoRenderer(std::shared_ptr<const RendererShared> shared,
                         DynamicPartialConfig dps)
    : shared_(std::move(shared)), sorter_(dps)
{
    // One thread knob drives every stage: binning/projection (binFrame),
    // reuse-and-update sorting (sorter_), and rasterization (base).
    sorter_.setThreads(opts().threads);
    integrity_.configure(resolveIntegrityMode(opts().integrity));
    if (integrity_.enabled())
        sorter_.setIntegrity(&integrity_);
}

Image
NeoRenderer::renderFrame(const GaussianScene &scene, const Camera &camera,
                         uint64_t frame_index, NeoFrameReport *report)
{
    Image image;
    renderFrameInto(image, scene, camera, frame_index, report);
    return image;
}

void
NeoRenderer::binStage(const GaussianScene &scene, const Camera &camera,
                      uint64_t frame_index)
{
    const bool fenced = integrity_.enabled();
    if (fenced)
        integrity_.beginFrame(frame_index);

    binFrameInto(frame_, arena_, scene, camera, opts().tile_px,
                 opts().threads);
    if (fenced) {
        // Binning fence: seal the fresh tile lists, expose the injection
        // window, and verify before the sorter consumes them. In recover
        // mode a mismatching tile is restored from the shadow here, so
        // corruption never reaches the persistent tables.
        integrity_.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                             frame_.tiles);
        faultinject::corruptTiles(kIntegrityBinTiles, frame_.tiles);
        integrity_.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                               frame_.tiles);

        // Projection fences: the feature SoA arrays are filled during
        // the binning scatter; seal them here and verify before the
        // sorter's deferred depth update copies frame depths into the
        // persistent tables — a corrupted depth caught any later would
        // already have poisoned cross-frame state.
        integrity_.sealSpan(IntegrityStage::Projection,
                            kIntegrityProjMean2d, frame_.mean2d);
        integrity_.sealSpan(IntegrityStage::Projection,
                            kIntegrityProjRadius, frame_.radius_px);
        integrity_.sealSpan(IntegrityStage::Projection, kIntegrityProjDepth,
                            frame_.depth);
        integrity_.sealSpan(IntegrityStage::Projection, kIntegrityProjConic,
                            frame_.conic);
        faultinject::corruptSpan(kIntegrityProjMean2d, frame_.mean2d);
        faultinject::corruptSpan(kIntegrityProjRadius, frame_.radius_px);
        faultinject::corruptSpan(kIntegrityProjDepth, frame_.depth);
        faultinject::corruptSpan(kIntegrityProjConic, frame_.conic);
        integrity_.verifySpan(IntegrityStage::Projection,
                              kIntegrityProjMean2d, frame_.mean2d);
        integrity_.verifySpan(IntegrityStage::Projection,
                              kIntegrityProjRadius, frame_.radius_px);
        integrity_.verifySpan(IntegrityStage::Projection,
                              kIntegrityProjDepth, frame_.depth);
        integrity_.verifySpan(IntegrityStage::Projection,
                              kIntegrityProjConic, frame_.conic);
    }
}

void
NeoRenderer::sortStage(uint64_t frame_index)
{
    // (The tracker's prev-id fence runs inside beginFrame: verified on
    // entry to observe(), re-sealed when the new membership is adopted.)
    sorter_.beginFrame(frame_, frame_index);
    if (integrity_.enabled()) {
        // Sorting fence: the persistent tables are final for this frame
        // once beginFrame returns (the deferred depth update runs inside
        // it); they are the orderings rasterization consumes.
        auto &tables = sorter_.mutableTables().tables();
        integrity_.sealTiles(IntegrityStage::Sorting, kIntegritySortTables,
                             tables);
        faultinject::corruptTiles(kIntegritySortTables, tables);
        integrity_.verifyTiles(IntegrityStage::Sorting,
                               kIntegritySortTables, tables);
    }
}

void
NeoRenderer::rasterStage(Image &out, uint64_t frame_index,
                         const std::vector<std::vector<TileEntry>> &orderings,
                         std::vector<std::vector<TileEntry>> &sort_tables,
                         FrameStats &stats)
{
    IntegrityContext *ctx = integrity_.enabled() ? &integrity_ : nullptr;
    shared_->base().renderInto(out, frame_, orderings, &stats, &arena_,
                               ctx);

    if (integrity_.mode() == IntegrityMode::Recover &&
        integrity_.frameFaulted()) {
        // Every faulted structure has already been restored from its
        // digest-verified shadow (or, for the CSR, the tile fell back to
        // the reference blend before any pixel write). Re-rendering the
        // whole frame through the scalar reference path — bit-identical
        // to the blocked kernel by the determinism contract — and
        // re-verifying the fenced inputs turns that contract into
        // end-to-end attestation: the delivered frame hash equals the
        // uncorrupted reference.
        shared_->reference().renderInto(out, frame_, orderings, &stats,
                                        nullptr, &integrity_);
        // Re-verify the fenced inputs. On the direct path the frame's
        // tile lists were depth-sorted in place after the binning seal,
        // so only the sorting fence (sealed post-sort) still applies —
        // &sort_tables == &frame_.tiles there.
        if (&sort_tables != &frame_.tiles)
            integrity_.verifyTiles(IntegrityStage::Binning,
                                   kIntegrityBinTiles, frame_.tiles);
        integrity_.verifyTiles(IntegrityStage::Sorting,
                               kIntegritySortTables, sort_tables);
        integrity_.markFrameRecovered();
    }

    if (integrity_.attestDue(frame_index)) {
        // Attest-mode cross-render: the delivered frame (after the
        // injection window below, which models corruption of delivered
        // pixels) must hash bit-identically to an independent render
        // through the scalar reference kernel. Detection only — the
        // frame is delivered as-is and the mismatch flows through the
        // normal FaultReport path.
        faultinject::corruptSpan(kIntegrityAttestFrame, out.pixels());
        shared_->reference().renderInto(attest_image_, frame_, orderings,
                                        nullptr, nullptr, nullptr);
        const uint64_t expected = attest_image_.contentHash();
        const uint64_t actual = out.contentHash();
        integrity_.noteCheck();
        if (expected != actual)
            integrity_.recordFault(IntegrityStage::Attestation,
                                   kIntegrityAttestFrame, -1, expected,
                                   actual, false);
    }
}

void
NeoRenderer::finishFrame(FrameStats &stats, NeoFrameReport *report)
{
    if (integrity_.enabled())
        integrity_.exportStats(stats.integrity);
    if (report) {
        report->frame = stats;
        report->sort = sorter_.takeStats();
        report->reuse = sorter_.lastReport();
    } else {
        sorter_.takeStats();
    }
}

void
NeoRenderer::renderFrameInto(Image &out, const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index,
                             NeoFrameReport *report)
{
    binStage(scene, camera, frame_index);
    sortStage(frame_index);

    FrameStats stats;
    rasterStage(out, frame_index, sorter_.orderings(),
                sorter_.mutableTables().tables(), stats);
    finishFrame(stats, report);
}

void
NeoRenderer::renderFrameTimed(Image &out, const GaussianScene &scene,
                              const Camera &camera, uint64_t frame_index,
                              StageTimings &stages, NeoFrameReport *report)
{
    stages = StageTimings{};

    auto t0 = steady_clock::now();
    binStage(scene, camera, frame_index);
    stages.bin_ms = msSince(t0);

    // The delta tracker runs inside the sorter's beginFrame, so its cost
    // is part of sort_ms; tracker_ms stays 0 on this path.
    t0 = steady_clock::now();
    sortStage(frame_index);
    stages.sort_ms = msSince(t0);

    FrameStats stats;
    t0 = steady_clock::now();
    rasterStage(out, frame_index, sorter_.orderings(),
                sorter_.mutableTables().tables(), stats);
    stages.raster_ms = msSince(t0);

    finishFrame(stats, report);
}

void
NeoRenderer::renderFrameDirect(Image &out, const GaussianScene &scene,
                               const Camera &camera, uint64_t frame_index,
                               StageTimings &stages, NeoFrameReport *report)
{
    stages = StageTimings{};

    auto t0 = steady_clock::now();
    binStage(scene, camera, frame_index);
    stages.bin_ms = msSince(t0);

    // Plain per-tile depth sort of the freshly binned lists — the
    // persistent tables are neither read nor written, so the reuse
    // sorter carries no trace of this frame (hence the caller-side
    // reset() contract before the next reuse-path frame).
    t0 = steady_clock::now();
    sortTablesBatched(frame_.tiles, opts().threads, direct_sort_scratch_);
    if (integrity_.enabled()) {
        integrity_.sealTiles(IntegrityStage::Sorting, kIntegritySortTables,
                             frame_.tiles);
        faultinject::corruptTiles(kIntegritySortTables, frame_.tiles);
        integrity_.verifyTiles(IntegrityStage::Sorting,
                               kIntegritySortTables, frame_.tiles);
    }
    stages.sort_ms = msSince(t0);

    FrameStats stats;
    static const std::vector<std::vector<TileEntry>> no_orderings;
    t0 = steady_clock::now();
    rasterStage(out, frame_index, no_orderings, frame_.tiles, stats);
    stages.raster_ms = msSince(t0);

    if (integrity_.enabled())
        integrity_.exportStats(stats.integrity);
    if (report) {
        report->frame = stats;
        report->sort = SortCoreStats{};
        report->reuse = ReuseUpdateReport{};
    }
}

FrameWorkload
NeoRenderer::extractWorkload(const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index)
{
    binStage(scene, camera, frame_index);
    sortStage(frame_index);

    FrameWorkload w =
        shared_->base().workloadFromBinned(frame_, camera.resolution());
    const FrameDelta &delta = sorter_.lastDelta();
    w.incoming_instances = delta.incoming_total;
    w.outgoing_instances = delta.outgoing_total;
    w.mean_tile_retention = delta.meanRetention();
    return w;
}

} // namespace neo
