#include "core/neo_renderer.h"

#include <cstdint>

namespace neo
{

PipelineOptions
NeoRenderer::neoDefaultOptions()
{
    PipelineOptions opts;
    opts.tile_px = 64;
    opts.raster.subtile_size = 8;
    return opts;
}

NeoRenderer::NeoRenderer(PipelineOptions opts, DynamicPartialConfig dps)
    : base_(opts), sorter_(dps)
{
    // One thread knob drives every stage: binning/projection (binFrame),
    // reuse-and-update sorting (sorter_), and rasterization (base_).
    sorter_.setThreads(opts.threads);
}

Image
NeoRenderer::renderFrame(const GaussianScene &scene, const Camera &camera,
                         uint64_t frame_index, NeoFrameReport *report)
{
    Image image;
    renderFrameInto(image, scene, camera, frame_index, report);
    return image;
}

void
NeoRenderer::prepareFrame(const GaussianScene &scene, const Camera &camera,
                          uint64_t frame_index)
{
    binFrameInto(frame_, arena_, scene, camera, base_.options().tile_px,
                 base_.options().threads);
    sorter_.beginFrame(frame_, frame_index);
}

void
NeoRenderer::renderFrameInto(Image &out, const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index,
                             NeoFrameReport *report)
{
    prepareFrame(scene, camera, frame_index);

    FrameStats stats;
    base_.renderInto(out, frame_, sorter_.orderings(), &stats, &arena_);

    if (report) {
        report->frame = stats;
        report->sort = sorter_.takeStats();
        report->reuse = sorter_.lastReport();
    } else {
        sorter_.takeStats();
    }
}

FrameWorkload
NeoRenderer::extractWorkload(const GaussianScene &scene,
                             const Camera &camera, uint64_t frame_index)
{
    prepareFrame(scene, camera, frame_index);

    FrameWorkload w = base_.workloadFromBinned(frame_, camera.resolution());
    const FrameDelta &delta = sorter_.lastDelta();
    w.incoming_instances = delta.incoming_total;
    w.outgoing_instances = delta.outgoing_total;
    w.mean_tile_retention = delta.meanRetention();
    return w;
}

} // namespace neo
