/**
 * @file
 * Persistent per-tile Gaussian tables — the central data structure of
 * Neo's reuse-and-update sorting. Each tile owns a depth-sorted table of
 * (GaussianId, depth, valid) entries that is carried across frames and
 * incrementally repaired instead of being rebuilt.
 *
 * An off-chip table entry is 8 bytes (32-bit id + 32-bit depth, with the
 * valid bit stolen from the id's MSB in hardware); the traffic models in
 * sim/ use kTableEntryBytes for all table-related byte accounting.
 */

#ifndef NEO_CORE_GAUSSIAN_TABLE_H
#define NEO_CORE_GAUSSIAN_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/tiling.h"

namespace neo
{

/** Off-chip size of one sorted-table entry (id + depth). */
constexpr uint64_t kTableEntryBytes = 8;

/** The set of persistent per-tile tables of one renderer instance. */
class TileTableSet
{
  public:
    TileTableSet() = default;

    /** Number of tiles currently tracked. */
    size_t tileCount() const { return tables_.size(); }

    /** Drop all state (e.g., on resolution change). */
    void reset(size_t tiles);

    bool empty() const { return tables_.empty(); }

    std::vector<TileEntry> &table(size_t tile) { return tables_[tile]; }
    const std::vector<TileEntry> &table(size_t tile) const
    {
        return tables_[tile];
    }

    std::vector<std::vector<TileEntry>> &tables() { return tables_; }
    const std::vector<std::vector<TileEntry>> &tables() const
    {
        return tables_;
    }

    /** Total entries across all tiles (live + invalidated). */
    uint64_t totalEntries() const;

    /** Total entries whose valid bit is set. */
    uint64_t validEntries() const;

  private:
    std::vector<std::vector<TileEntry>> tables_;
};

/**
 * Positions of the ids shared between two depth orderings, reported as
 * |position_prev - position_cur| for every shared id. This is the
 * "sorting order difference" statistic of Fig. 7.
 */
std::vector<double>
orderDisplacements(const std::vector<TileEntry> &prev_sorted,
                   const std::vector<TileEntry> &cur_sorted);

} // namespace neo

#endif // NEO_CORE_GAUSSIAN_TABLE_H
