#include "sort/bitonic.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace neo
{

uint64_t
bitonicNetworkOps(int n)
{
    int k = 0;
    while ((1 << k) < n)
        ++k;
    if ((1 << k) != n)
        panic("bitonicNetworkOps: width %d is not a power of two", n);
    // k major stages; stage i has i+1 substages; each substage does n/2
    // compare-exchanges.
    return static_cast<uint64_t>(n / 2) * (static_cast<uint64_t>(k) *
                                           (k + 1) / 2);
}

void
bsuSortSubchunk(std::vector<TileEntry> &entries, size_t first, size_t count,
                BsuStats *stats)
{
    if (count == 0)
        return;
    if (count > static_cast<size_t>(kBsuWidth))
        panic("bsuSortSubchunk: %zu entries exceed network width", count);

    // Lanes beyond count hold +inf keys so they sink to the end.
    TileEntry lanes[kBsuWidth];
    for (int i = 0; i < kBsuWidth; ++i) {
        if (static_cast<size_t>(i) < count) {
            lanes[i] = entries[first + i];
        } else {
            lanes[i] = TileEntry{std::numeric_limits<GaussianId>::max(),
                                 std::numeric_limits<float>::infinity(),
                                 false};
        }
    }

    uint64_t ops = 0;
    uint64_t stages = 0;
    // Classic bitonic sorting network on kBsuWidth lanes.
    for (int size = 2; size <= kBsuWidth; size <<= 1) {
        for (int stride = size >> 1; stride > 0; stride >>= 1) {
            ++stages;
            for (int i = 0; i < kBsuWidth; ++i) {
                int partner = i ^ stride;
                if (partner <= i)
                    continue;
                bool ascending = ((i & size) == 0);
                ++ops;
                bool out_of_order =
                    ascending ? entryDepthLess(lanes[partner], lanes[i])
                              : entryDepthLess(lanes[i], lanes[partner]);
                if (out_of_order)
                    std::swap(lanes[i], lanes[partner]);
            }
        }
    }

    for (size_t i = 0; i < count; ++i)
        entries[first + i] = lanes[i];

    if (stats) {
        ++stats->subchunks;
        stats->compare_exchanges += ops;
        stats->stages += stages;
    }
}

void
bsuSortRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
            BsuStats *stats)
{
    for (size_t off = 0; off < count; off += kBsuWidth) {
        size_t n = std::min<size_t>(kBsuWidth, count - off);
        bsuSortSubchunk(entries, first + off, n, stats);
    }
}

} // namespace neo
