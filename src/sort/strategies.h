/**
 * @file
 * Sorting-reuse strategies explored in the paper's design-space analysis
 * (§4.1, Fig. 19): full per-frame sorting, periodic sorting, background
 * sorting, and GSCore-style hierarchical sorting. Neo's reuse-and-update
 * strategy implements the same interface in core/reuse_update.h.
 *
 * A strategy consumes the freshly binned frame (ground-truth per-tile
 * membership and depths) and yields, per tile, the ordering the
 * rasterizer will use this frame — which may be stale or partially sorted,
 * exactly reproducing each method's artifacts — plus hardware counters
 * for the timing model.
 */

#ifndef NEO_SORT_STRATEGIES_H
#define NEO_SORT_STRATEGIES_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "gs/tiling.h"
#include "sort/chunk_sort.h"

namespace neo
{

class IntegrityContext;

/** Base interface of a per-tile sorting strategy. */
class SortingStrategy
{
  public:
    virtual ~SortingStrategy() = default;

    /** Human-readable name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Ingest frame @p frame_index and compute all tile orderings.
     * Implementations accumulate their hardware work into stats().
     */
    virtual void beginFrame(const BinnedFrame &frame,
                            uint64_t frame_index) = 0;

    /** Ordering to rasterize @p tile with (valid until next beginFrame). */
    virtual const std::vector<TileEntry> &tileOrder(int tile) const = 0;

    /** All tile orderings (size = tile count of the last frame). */
    virtual const std::vector<std::vector<TileEntry>> &orderings() const = 0;

    /** Counters accumulated since the last takeStats(). */
    const SortCoreStats &stats() const { return stats_; }

    /** Return and reset the accumulated counters. */
    SortCoreStats takeStats()
    {
        SortCoreStats s = stats_;
        stats_ = SortCoreStats{};
        return s;
    }

    /**
     * Set the worker-thread count used by beginFrame. Tiles are sorted
     * independently, so any count produces identical orderings and
     * counters (per-chunk counter accumulators merge in fixed order);
     * single-tile frames additionally split the in-tile chunk sorts and
     * the MSU+ merge tree across the same workers. Virtual so strategies
     * with extra threaded stages (reuse-and-update's delta tracker) can
     * fan the one knob out.
     * Accepts resolveThreadCount semantics (0 = NEO_THREADS env).
     */
    virtual void setThreads(int threads)
    {
        threads_ = resolveThreadCount(threads);
    }

    /** Effective worker-thread count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Attach an integrity context (nullptr detaches). The base class
     * ignores it; strategies with cross-frame state worth fencing
     * (reuse-and-update's persistent tables and delta tracker) override
     * this to thread the context into their stages.
     */
    virtual void setIntegrity(IntegrityContext *) {}

  protected:
    SortCoreStats stats_;
    int threads_ = resolveThreadCount(0);
};

/**
 * Sort every tile from scratch every frame (the 3DGS baseline). Exact
 * ordering; cost includes the global cross-chunk merge passes.
 */
class FullSortStrategy : public SortingStrategy
{
  public:
    std::string name() const override { return "full"; }
    void beginFrame(const BinnedFrame &frame, uint64_t frame_index) override;
    const std::vector<TileEntry> &tileOrder(int tile) const override
    {
        return tables_[tile];
    }
    const std::vector<std::vector<TileEntry>> &orderings() const override
    {
        return tables_;
    }

  private:
    std::vector<std::vector<TileEntry>> tables_;
};

/**
 * GSCore-style hierarchical sorting: a coarse bucketing pass followed by
 * fine in-bucket sorts. Exact ordering each frame at lower sorting cost
 * than naive global merge sorting, but still a from-scratch method with
 * multiple off-chip passes.
 */
class HierarchicalSortStrategy : public SortingStrategy
{
  public:
    std::string name() const override { return "hierarchical"; }
    void beginFrame(const BinnedFrame &frame, uint64_t frame_index) override;
    const std::vector<TileEntry> &tileOrder(int tile) const override
    {
        return tables_[tile];
    }
    const std::vector<std::vector<TileEntry>> &orderings() const override
    {
        return tables_;
    }

  private:
    std::vector<std::vector<TileEntry>> tables_;
};

/**
 * Periodic sorting: a full re-sort every @p period frames; intermediate
 * frames reuse the last sorted tables verbatim (stale membership and
 * order), so errors accumulate between refreshes and refresh frames cause
 * latency spikes.
 */
class PeriodicSortStrategy : public SortingStrategy
{
  public:
    explicit PeriodicSortStrategy(int period = 8) : period_(period) {}

    std::string name() const override { return "periodic"; }
    void beginFrame(const BinnedFrame &frame, uint64_t frame_index) override;
    const std::vector<TileEntry> &tileOrder(int tile) const override
    {
        return tables_[tile];
    }
    const std::vector<std::vector<TileEntry>> &orderings() const override
    {
        return tables_;
    }

    int period() const { return period_; }
    /** Whether the most recent frame performed the full re-sort. */
    bool refreshedLastFrame() const { return refreshed_; }

  private:
    int period_;
    bool refreshed_ = false;
    std::vector<std::vector<TileEntry>> tables_;
};

/**
 * Background sorting (as in WebGL splat viewers): sorting runs continuously
 * one frame behind rendering, so each frame is rasterized with the ordering
 * computed from the previous frame's viewpoint. Cost is a sustained full
 * sort per frame; quality suffers from the viewpoint discrepancy.
 */
class BackgroundSortStrategy : public SortingStrategy
{
  public:
    std::string name() const override { return "background"; }
    void beginFrame(const BinnedFrame &frame, uint64_t frame_index) override;
    const std::vector<TileEntry> &tileOrder(int tile) const override
    {
        return tables_[tile];
    }
    const std::vector<std::vector<TileEntry>> &orderings() const override
    {
        return tables_;
    }

  private:
    std::vector<std::vector<TileEntry>> tables_;   //!< served this frame
    std::vector<std::vector<TileEntry>> pending_;  //!< ready next frame
};

/**
 * Exact hierarchical sort of one table with GSCore-style cost accounting:
 * one read+write bucketing pass plus one read+write fine-sort pass.
 */
void hierarchicalSortTable(std::vector<TileEntry> &table,
                           SortCoreStats *stats);

} // namespace neo

#endif // NEO_SORT_STRATEGIES_H
