/**
 * @file
 * Merge Sorting Unit+ (MSU+) model. The MSU+ of a Neo Sorting Core merges
 * sorted runs and, beyond a conventional merge unit, (a) filters out
 * entries whose valid bit was cleared during the previous frame's
 * rasterization (deferred deletion — no shift cost) and (b) merges the
 * sorted incoming-Gaussian table into the reused table in the same pass
 * (insertion).
 */

#ifndef NEO_SORT_MERGE_UNIT_H
#define NEO_SORT_MERGE_UNIT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/tiling.h"

namespace neo
{

/** Operation counters for a Merge Sorting Unit+. */
struct MsuStats
{
    uint64_t merges = 0;           //!< merge passes executed
    uint64_t elements_processed = 0; //!< elements streamed through
    uint64_t compares = 0;           //!< head-to-head comparisons
    uint64_t filtered_invalid = 0;   //!< entries dropped by valid-bit filter
};

/**
 * Two-way merge of sorted runs @p a and @p b into @p out (cleared first).
 * Entries with valid == false in either input are filtered out, modeling
 * the MSU+ invalid-bit filter on its local input buffers.
 */
void msuMerge(const std::vector<TileEntry> &a, const std::vector<TileEntry> &b,
              std::vector<TileEntry> &out, MsuStats *stats = nullptr);

/**
 * Merge consecutive sorted runs of length @p run inside
 * @p entries[first, first+count), doubling the run length; repeat until a
 * single sorted run remains. This is the in-core merge tree that follows
 * bsuSortRuns, producing a fully sorted chunk.
 *
 * @return number of merge passes executed (for cycle accounting).
 */
int msuMergeRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
                 size_t run, MsuStats *stats = nullptr);

/**
 * The full MSU+ reuse-and-update step for one tile: stream the (sorted,
 * possibly containing invalidated entries) reused table and the sorted
 * incoming table through the unit, dropping invalid entries and merging in
 * the newcomers in a single pass.
 */
void msuUpdateTable(const std::vector<TileEntry> &reused_sorted,
                    const std::vector<TileEntry> &incoming_sorted,
                    std::vector<TileEntry> &out, MsuStats *stats = nullptr);

} // namespace neo

#endif // NEO_SORT_MERGE_UNIT_H
