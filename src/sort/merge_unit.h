/**
 * @file
 * Merge Sorting Unit+ (MSU+) model. The MSU+ of a Neo Sorting Core merges
 * sorted runs and, beyond a conventional merge unit, (a) filters out
 * entries whose valid bit was cleared during the previous frame's
 * rasterization (deferred deletion — no shift cost) and (b) merges the
 * sorted incoming-Gaussian table into the reused table in the same pass
 * (insertion).
 *
 * Long tables can additionally split across worker threads: the merge
 * tree of msuMergeRuns fans its independent pairwise merges of each pass
 * out over the pool (fixed tree shape, disjoint output ranges), and the
 * two-way msuMerge / msuUpdateTable *speculatively* splits the merged
 * output at merge-path partition points assuming both inputs are sorted,
 * verifying the assumption inside the parallel spans and falling back to
 * the serial interleaving when it is refuted. Both paths recombine in
 * fixed chunk order and keep every hardware counter bit-identical to the
 * serial pass for any thread count.
 */

#ifndef NEO_SORT_MERGE_UNIT_H
#define NEO_SORT_MERGE_UNIT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/tiling.h"

namespace neo
{

/** Operation counters for a Merge Sorting Unit+. */
struct MsuStats
{
    uint64_t merges = 0;           //!< merge passes executed
    uint64_t elements_processed = 0; //!< elements streamed through
    uint64_t compares = 0;           //!< head-to-head comparisons
    uint64_t filtered_invalid = 0;   //!< entries dropped by valid-bit filter

    MsuStats &
    operator+=(const MsuStats &o)
    {
        merges += o.merges;
        elements_processed += o.elements_processed;
        compares += o.compares;
        filtered_invalid += o.filtered_invalid;
        return *this;
    }
};

/**
 * Tables shorter than this always merge serially: below it the split /
 * recombination bookkeeping costs more than the merge itself (a table
 * this size is a handful of 256-entry hardware chunks).
 */
constexpr size_t kMsuParallelMinEntries = 2048;

/**
 * Two-way merge of sorted runs @p a and @p b into @p out (cleared first).
 * Entries with valid == false in either input are filtered out, modeling
 * the MSU+ invalid-bit filter on its local input buffers.
 *
 * With @p threads > 1 and enough entries, the merge runs *speculatively*:
 * the output is split at merge-path partition points computed as if both
 * inputs were sorted, the spans merge on the pool concurrently, and each
 * span verifies the sortedness of its own slice of the inputs as it goes
 * (collectively a full std::is_sorted of both inputs, without the two
 * upfront serial scans). If any span finds an inversion — the reused
 * table under Dynamic Partial Sorting is only approximately sorted — the
 * speculative result is discarded and the serial loop, whose element
 * interleaving is the behavioral contract, runs instead. Output and
 * counters are bit-identical to the serial pass in both outcomes.
 */
void msuMerge(const std::vector<TileEntry> &a, const std::vector<TileEntry> &b,
              std::vector<TileEntry> &out, MsuStats *stats = nullptr,
              int threads = 1);

/**
 * Merge consecutive sorted runs of length @p run inside
 * @p entries[first, first+count), doubling the run length; repeat until a
 * single sorted run remains. This is the in-core merge tree that follows
 * bsuSortRuns, producing a fully sorted chunk. With @p threads > 1 the
 * independent pairwise merges of each pass execute on the worker pool
 * (they write disjoint ranges; the tree shape is fixed by (count, run)
 * alone, so results and counters never depend on the thread count).
 *
 * @return number of merge passes executed (for cycle accounting).
 */
int msuMergeRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
                 size_t run, MsuStats *stats = nullptr, int threads = 1);

/**
 * The full MSU+ reuse-and-update step for one tile: stream the (sorted,
 * possibly containing invalidated entries) reused table and the sorted
 * incoming table through the unit, dropping invalid entries and merging in
 * the newcomers in a single pass. @p threads as in msuMerge.
 */
void msuUpdateTable(const std::vector<TileEntry> &reused_sorted,
                    const std::vector<TileEntry> &incoming_sorted,
                    std::vector<TileEntry> &out, MsuStats *stats = nullptr,
                    int threads = 1);

} // namespace neo

#endif // NEO_SORT_MERGE_UNIT_H
