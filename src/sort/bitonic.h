/**
 * @file
 * Bitonic Sorting Unit (BSU) model. Each Neo Sorting Core contains a
 * 16-wide bitonic network that sorts 16-entry sub-chunks in a fixed number
 * of compare-exchange stages; this module implements the network exactly
 * (including its data-independent schedule) and counts its operations so
 * the timing model can convert them into cycles.
 */

#ifndef NEO_SORT_BITONIC_H
#define NEO_SORT_BITONIC_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gs/tiling.h"

namespace neo
{

/** Width of the hardware bitonic network (entries per sub-chunk). */
constexpr int kBsuWidth = 16;

/** Operation counters for a Bitonic Sorting Unit. */
struct BsuStats
{
    uint64_t subchunks = 0;         //!< sub-chunk sorts performed
    uint64_t compare_exchanges = 0; //!< individual compare-exchange ops
    uint64_t stages = 0;            //!< network stages executed
};

/**
 * Number of compare-exchange operations of an n-wide bitonic network
 * (n must be a power of two): (n/2) * k(k+1)/2 with k = log2(n).
 */
uint64_t bitonicNetworkOps(int n);

/**
 * Sort @p entries[first, first+count) in place by depth using a bitonic
 * network of width kBsuWidth. @p count may be smaller than the network
 * width; missing lanes are fed +inf keys, exactly like hardware padding.
 *
 * @param stats optional operation counters to accumulate into.
 */
void bsuSortSubchunk(std::vector<TileEntry> &entries, size_t first,
                     size_t count, BsuStats *stats = nullptr);

/**
 * Sort an arbitrary span by running the BSU over consecutive sub-chunks
 * (the result is 16-sorted runs, NOT a fully sorted span; the MSU merges
 * the runs — see merge_unit.h).
 */
void bsuSortRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
                 BsuStats *stats = nullptr);

} // namespace neo

#endif // NEO_SORT_BITONIC_H
