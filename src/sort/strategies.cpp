#include "sort/strategies.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace neo
{

namespace
{

/** Copy the frame's (unsorted) tile lists into @p tables. */
void
copyTiles(const BinnedFrame &frame,
          std::vector<std::vector<TileEntry>> &tables)
{
    tables.assign(frame.tiles.begin(), frame.tiles.end());
}

/**
 * Apply @p sort_one to every table through the fused batched dispatch:
 * tiles pack into ~kSortBatchGrain-entry weighted batches and the pool
 * executes batches, not tiles, so frames made of thousands of tiny tiles
 * pay one dispatch per ~256 entries instead of one per tile. Hardware
 * counters accumulate per pool chunk and merge into @p stats in fixed
 * chunk order; because per-tile counters are integer sums, the totals are
 * bit-identical to the unbatched per-tile loop at any thread count. The
 * thread count is also forwarded to the per-table sort so that frames
 * whose tile count cannot feed every worker (the single-tile case in
 * particular — then the whole frame is one batch and the dispatch runs
 * inline) still split the in-tile merge tree across the pool.
 */
template <typename SortFn>
void
sortTablesParallel(std::vector<std::vector<TileEntry>> &tables, int threads,
                   SortCoreStats &stats, SortFn sort_one)
{
    std::vector<ParallelRange> batches;
    buildWeightedBatchesInto(batches, tables.size(), kSortBatchGrain,
                             [&](size_t t) { return tables[t].size(); });
    std::vector<SortCoreStats> acc(
        parallelChunkCount(batches.size(), threads));
    parallelForBatched(batches, threads,
                       [&](size_t begin, size_t end, size_t chunk) {
                           for (size_t t = begin; t < end; ++t)
                               sort_one(tables[t], &acc[chunk], threads);
                       });
    for (const SortCoreStats &s : acc)
        stats += s;
}

} // namespace

void
hierarchicalSortTable(std::vector<TileEntry> &table, SortCoreStats *stats)
{
    const size_t n = table.size();
    if (n == 0)
        return;

    // Coarse pass: scatter entries into depth buckets sized to the chunk
    // capacity so each bucket can be fine-sorted on-chip. We bucket by
    // rank (via nth positions of a sample) rather than fixed depth ranges
    // to keep buckets balanced, which is what GSCore's coarse level
    // achieves with its hierarchical tiles.
    std::sort(table.begin(), table.end(), entryDepthLess);
    if (stats) {
        // One read+write pass for the coarse scatter, one for the fine
        // in-bucket sorts; fine sorts also exercise the BSU/MSU.
        stats->entries_read += 2 * n;
        stats->entries_written += 2 * n;
        const size_t buckets = (n + kChunkSize - 1) / kChunkSize;
        stats->chunk_loads += buckets;
        stats->chunk_stores += buckets;
        for (size_t first = 0; first < n; first += kChunkSize) {
            size_t count = std::min(kChunkSize, n - first);
            size_t subchunks = (count + kBsuWidth - 1) / kBsuWidth;
            stats->bsu.subchunks += subchunks;
            stats->bsu.compare_exchanges +=
                subchunks * bitonicNetworkOps(kBsuWidth);
            stats->msu.elements_processed += count;
        }
    }
}

void
FullSortStrategy::beginFrame(const BinnedFrame &frame, uint64_t frame_index)
{
    (void)frame_index;
    copyTiles(frame, tables_);
    sortTablesParallel(tables_, threads_, stats_,
                       [](std::vector<TileEntry> &t, SortCoreStats *s,
                          int threads) {
                           fullSortTable(t, s, threads);
                       });
}

void
HierarchicalSortStrategy::beginFrame(const BinnedFrame &frame,
                                     uint64_t frame_index)
{
    (void)frame_index;
    copyTiles(frame, tables_);
    sortTablesParallel(tables_, threads_, stats_,
                       [](std::vector<TileEntry> &t, SortCoreStats *s,
                          int threads) {
                           (void)threads;
                           hierarchicalSortTable(t, s);
                       });
}

void
PeriodicSortStrategy::beginFrame(const BinnedFrame &frame,
                                 uint64_t frame_index)
{
    const bool refresh =
        tables_.empty() ||
        tables_.size() != frame.tiles.size() ||
        (period_ > 0 && frame_index % static_cast<uint64_t>(period_) == 0);
    refreshed_ = refresh;
    if (!refresh) {
        // Intermediate frame: render with the stale tables; no sort work.
        return;
    }
    copyTiles(frame, tables_);
    sortTablesParallel(tables_, threads_, stats_,
                       [](std::vector<TileEntry> &t, SortCoreStats *s,
                          int threads) {
                           fullSortTable(t, s, threads);
                       });
}

void
BackgroundSortStrategy::beginFrame(const BinnedFrame &frame,
                                   uint64_t frame_index)
{
    (void)frame_index;
    // The background thread finished sorting the *previous* frame's tables;
    // serve those, then start sorting the current frame for the next one.
    if (!pending_.empty() && pending_.size() == frame.tiles.size())
        tables_ = std::move(pending_);

    pending_.assign(frame.tiles.begin(), frame.tiles.end());
    sortTablesParallel(pending_, threads_, stats_,
                       [](std::vector<TileEntry> &t, SortCoreStats *s,
                          int threads) {
                           fullSortTable(t, s, threads);
                       });

    if (tables_.empty() || tables_.size() != frame.tiles.size()) {
        // First frame (or resolution change): nothing stale to serve yet.
        tables_ = pending_;
    }
}

} // namespace neo
