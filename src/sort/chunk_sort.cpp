#include "sort/chunk_sort.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace neo
{

SortCoreStats &
SortCoreStats::operator+=(const SortCoreStats &o)
{
    bsu.subchunks += o.bsu.subchunks;
    bsu.compare_exchanges += o.bsu.compare_exchanges;
    bsu.stages += o.bsu.stages;
    msu.merges += o.msu.merges;
    msu.elements_processed += o.msu.elements_processed;
    msu.compares += o.msu.compares;
    msu.filtered_invalid += o.msu.filtered_invalid;
    chunk_loads += o.chunk_loads;
    chunk_stores += o.chunk_stores;
    entries_read += o.entries_read;
    entries_written += o.entries_written;
    global_merge_passes += o.global_merge_passes;
    return *this;
}

void
sortChunk(std::vector<TileEntry> &entries, size_t first, size_t count,
          SortCoreStats *stats)
{
    if (count == 0)
        return;
    if (count > kChunkSize)
        panic("sortChunk: %zu entries exceed the chunk capacity", count);

    BsuStats *bsu = stats ? &stats->bsu : nullptr;
    MsuStats *msu = stats ? &stats->msu : nullptr;
    bsuSortRuns(entries, first, count, bsu);
    msuMergeRuns(entries, first, count, kBsuWidth, msu);
    if (stats) {
        ++stats->chunk_loads;
        ++stats->chunk_stores;
        stats->entries_read += count;
        stats->entries_written += count;
    }
}

void
fullSortTable(std::vector<TileEntry> &table, SortCoreStats *stats,
              int threads)
{
    const size_t n = table.size();
    if (n == 0)
        return;
    const size_t chunks = (n + kChunkSize - 1) / kChunkSize;
    if (threads > 1 && chunks > 1 && n >= kMsuParallelMinEntries &&
        !ThreadPool::insideParallelRegion()) {
        // The 256-entry chunk sorts touch disjoint slices, so they fan
        // out over the pool; counters are integer sums per chunk, merged
        // in fixed chunk order.
        for (const SortCoreStats &s : parallelForAccumulate<SortCoreStats>(
                 chunks, threads,
                 [&](size_t begin, size_t end, SortCoreStats &cs) {
                     for (size_t c = begin; c < end; ++c) {
                         const size_t first = c * kChunkSize;
                         sortChunk(table, first,
                                   std::min(kChunkSize, n - first),
                                   stats ? &cs : nullptr);
                     }
                 }))
            if (stats)
                *stats += s;
    } else {
        for (size_t first = 0; first < n; first += kChunkSize)
            sortChunk(table, first, std::min(kChunkSize, n - first), stats);
    }

    if (chunks > 1) {
        // Global merge across chunks. Functionally we merge in one go; the
        // hardware streams the table through the MSU+ log2(chunks) times,
        // so cost that many extra off-chip passes.
        MsuStats *msu = stats ? &stats->msu : nullptr;
        msuMergeRuns(table, 0, n, kChunkSize, msu, threads);
        size_t passes = 0;
        for (size_t c = 1; c < chunks; c <<= 1)
            ++passes;
        if (stats) {
            stats->global_merge_passes += passes;
            stats->entries_read += passes * n;
            stats->entries_written += passes * n;
        }
    }
}

} // namespace neo
