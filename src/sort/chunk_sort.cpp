#include "sort/chunk_sort.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace neo
{

SortCoreStats &
SortCoreStats::operator+=(const SortCoreStats &o)
{
    bsu.subchunks += o.bsu.subchunks;
    bsu.compare_exchanges += o.bsu.compare_exchanges;
    bsu.stages += o.bsu.stages;
    msu.merges += o.msu.merges;
    msu.elements_processed += o.msu.elements_processed;
    msu.compares += o.msu.compares;
    msu.filtered_invalid += o.msu.filtered_invalid;
    chunk_loads += o.chunk_loads;
    chunk_stores += o.chunk_stores;
    entries_read += o.entries_read;
    entries_written += o.entries_written;
    global_merge_passes += o.global_merge_passes;
    return *this;
}

void
sortChunk(std::vector<TileEntry> &entries, size_t first, size_t count,
          SortCoreStats *stats)
{
    if (count == 0)
        return;
    if (count > kChunkSize)
        panic("sortChunk: %zu entries exceed the chunk capacity", count);

    BsuStats *bsu = stats ? &stats->bsu : nullptr;
    MsuStats *msu = stats ? &stats->msu : nullptr;
    bsuSortRuns(entries, first, count, bsu);
    msuMergeRuns(entries, first, count, kBsuWidth, msu);
    if (stats) {
        ++stats->chunk_loads;
        ++stats->chunk_stores;
        stats->entries_read += count;
        stats->entries_written += count;
    }
}

void
fullSortTable(std::vector<TileEntry> &table, SortCoreStats *stats)
{
    const size_t n = table.size();
    if (n == 0)
        return;
    for (size_t first = 0; first < n; first += kChunkSize)
        sortChunk(table, first, std::min(kChunkSize, n - first), stats);

    const size_t chunks = (n + kChunkSize - 1) / kChunkSize;
    if (chunks > 1) {
        // Global merge across chunks. Functionally we merge in one go; the
        // hardware streams the table through the MSU+ log2(chunks) times,
        // so cost that many extra off-chip passes.
        MsuStats *msu = stats ? &stats->msu : nullptr;
        msuMergeRuns(table, 0, n, kChunkSize, msu);
        size_t passes = 0;
        for (size_t c = 1; c < chunks; c <<= 1)
            ++passes;
        if (stats) {
            stats->global_merge_passes += passes;
            stats->entries_read += passes * n;
            stats->entries_written += passes * n;
        }
    }
}

} // namespace neo
