#include "sort/merge_unit.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace neo
{

namespace
{

/** Append @p e to @p out unless its valid bit is cleared. */
inline void
emit(const TileEntry &e, std::vector<TileEntry> &out, MsuStats *stats)
{
    if (e.valid) {
        out.push_back(e);
    } else if (stats) {
        ++stats->filtered_invalid;
    }
}

} // namespace

void
msuMerge(const std::vector<TileEntry> &a, const std::vector<TileEntry> &b,
         std::vector<TileEntry> &out, MsuStats *stats)
{
    out.clear();
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (stats)
            ++stats->compares;
        if (entryDepthLess(b[j], a[i]))
            emit(b[j++], out, stats);
        else
            emit(a[i++], out, stats);
    }
    while (i < a.size())
        emit(a[i++], out, stats);
    while (j < b.size())
        emit(b[j++], out, stats);
    if (stats) {
        ++stats->merges;
        stats->elements_processed += a.size() + b.size();
    }
}

int
msuMergeRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
             size_t run, MsuStats *stats)
{
    if (count <= 1)
        return 0;
    int passes = 0;
    std::vector<TileEntry> scratch;
    scratch.reserve(count);
    while (run < count) {
        ++passes;
        for (size_t lo = 0; lo < count; lo += 2 * run) {
            size_t mid = std::min(lo + run, count);
            size_t hi = std::min(lo + 2 * run, count);
            if (mid >= hi)
                continue;
            scratch.clear();
            size_t i = first + lo, j = first + mid;
            const size_t i_end = first + mid, j_end = first + hi;
            while (i < i_end && j < j_end) {
                if (stats)
                    ++stats->compares;
                if (entryDepthLess(entries[j], entries[i]))
                    scratch.push_back(entries[j++]);
                else
                    scratch.push_back(entries[i++]);
            }
            while (i < i_end)
                scratch.push_back(entries[i++]);
            while (j < j_end)
                scratch.push_back(entries[j++]);
            std::copy(scratch.begin(), scratch.end(),
                      entries.begin() + first + lo);
            if (stats) {
                ++stats->merges;
                stats->elements_processed += hi - lo;
            }
        }
        run *= 2;
    }
    return passes;
}

void
msuUpdateTable(const std::vector<TileEntry> &reused_sorted,
               const std::vector<TileEntry> &incoming_sorted,
               std::vector<TileEntry> &out, MsuStats *stats)
{
    msuMerge(reused_sorted, incoming_sorted, out, stats);
}

} // namespace neo
