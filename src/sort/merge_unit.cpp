#include "sort/merge_unit.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.h"

namespace neo
{

namespace
{

/** Append @p e to @p out unless its valid bit is cleared. */
inline void
emit(const TileEntry &e, std::vector<TileEntry> &out, MsuStats *stats)
{
    if (e.valid) {
        out.push_back(e);
    } else if (stats) {
        ++stats->filtered_invalid;
    }
}

/**
 * Merge the adjacent runs [lo, mid) and [mid, hi) of
 * entries[first, first+count) in place through @p scratch, with the exact
 * comparison and counter behavior of the historical serial pass. One node
 * of the fixed-shape merge tree.
 */
void
mergePairInPlace(std::vector<TileEntry> &entries, size_t first, size_t count,
                 size_t lo, size_t run, std::vector<TileEntry> &scratch,
                 MsuStats *stats)
{
    const size_t mid = std::min(lo + run, count);
    const size_t hi = std::min(lo + 2 * run, count);
    if (mid >= hi)
        return;
    scratch.clear();
    size_t i = first + lo, j = first + mid;
    const size_t i_end = first + mid, j_end = first + hi;
    while (i < i_end && j < j_end) {
        if (stats)
            ++stats->compares;
        if (entryDepthLess(entries[j], entries[i]))
            scratch.push_back(entries[j++]);
        else
            scratch.push_back(entries[i++]);
    }
    while (i < i_end)
        scratch.push_back(entries[i++]);
    while (j < j_end)
        scratch.push_back(entries[j++]);
    std::copy(scratch.begin(), scratch.end(),
              entries.begin() + first + lo);
    if (stats) {
        ++stats->merges;
        stats->elements_processed += hi - lo;
    }
}

/**
 * Number of head-to-head compares the serial two-way merge loop performs
 * on sorted inputs, computed analytically: the loop compares once per
 * emitted element until one input exhausts. Input a exhausts at output
 * position |a| + #{elements of b strictly before a.back()}; input b at
 * |b| + #{elements of a at or before b.back()} (ties emit from a). The
 * loop stops at whichever comes first.
 */
uint64_t
serialMergeCompares(const std::vector<TileEntry> &a,
                    const std::vector<TileEntry> &b)
{
    if (a.empty() || b.empty())
        return 0;
    const size_t before_a_last =
        std::lower_bound(b.begin(), b.end(), a.back(), entryDepthLess) -
        b.begin();
    const size_t before_b_last =
        std::upper_bound(a.begin(), a.end(), b.back(), entryDepthLess) -
        a.begin();
    return std::min<uint64_t>(a.size() + before_a_last,
                              b.size() + before_b_last);
}

/**
 * Merge-path split: the unique (i, k - i) such that the first @p k
 * elements of the serial merge of sorted @p a and @p b are exactly
 * a[0, i) and b[0, k - i), with ties emitting from a. Returns i.
 */
size_t
mergePathSplit(const std::vector<TileEntry> &a,
               const std::vector<TileEntry> &b, size_t k)
{
    size_t lo = k > b.size() ? k - b.size() : 0;
    size_t hi = std::min(k, a.size());
    while (lo < hi) {
        const size_t i = lo + (hi - lo) / 2;
        const size_t j = k - i;
        // a[i] still belongs in the first k elements when it does not
        // come after b[j - 1] (ties emit from a).
        if (i < a.size() && j > 0 && !entryDepthLess(b[j - 1], a[i]))
            lo = i + 1;
        else
            hi = i;
    }
    return lo;
}

/**
 * Speculative parallel two-way merge. Assume both inputs are sorted:
 * split the merged output into one span per chunk at merge-path partition
 * points, merge the spans concurrently into per-chunk buffers, and
 * concatenate in chunk order — verifying the assumption along the way
 * instead of paying two upfront serial std::is_sorted scans.
 *
 * The speculation is refuted in two places. (1) Pre-flight: on unsorted
 * input the blind merge-path searches can yield non-monotone split
 * points; those reject immediately, before any parallel work. (2) Fused
 * verification: each chunk first scans the adjacent pairs of its own
 * input spans, including the pair that crosses into the previous span —
 * collectively that is exactly std::is_sorted of both inputs, but it runs
 * in parallel — and raises the shared `failed` flag on the first
 * inversion, which later chunks poll to cut their work short.
 *
 * Returns true on acceptance, with `out` and the counters bit-identical
 * to the serial loop (compares reconstructed analytically via
 * serialMergeCompares, the invalid filter from the emitted-element
 * deficit). Returns false on refutation with `out` and the counters
 * untouched — the caller falls back to the serial interleaving.
 */
bool
msuMergeSpeculative(const std::vector<TileEntry> &a,
                    const std::vector<TileEntry> &b,
                    std::vector<TileEntry> &out, MsuStats *stats,
                    int threads)
{
    const size_t total = a.size() + b.size();
    const size_t chunks = parallelChunkCount(total, threads);

    std::vector<size_t> ia(chunks + 1), jb(chunks + 1);
    for (size_t c = 0; c <= chunks; ++c) {
        const size_t k =
            c == chunks ? total : parallelChunkRange(total, chunks, c).begin;
        ia[c] = mergePathSplit(a, b, k);
        jb[c] = k - ia[c];
    }
    for (size_t c = 0; c < chunks; ++c)
        if (ia[c] > ia[c + 1] || jb[c] > jb[c + 1])
            return false;

    std::atomic<bool> failed{false};
    std::vector<std::vector<TileEntry>> parts(chunks);
    parallelForEach(chunks, threads, [&](size_t c) {
        for (size_t x = std::max(ia[c], size_t{1}); x < ia[c + 1]; ++x)
            if (entryDepthLess(a[x], a[x - 1])) {
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        for (size_t x = std::max(jb[c], size_t{1}); x < jb[c + 1]; ++x)
            if (entryDepthLess(b[x], b[x - 1])) {
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        if (failed.load(std::memory_order_relaxed))
            return; // another span already refuted the speculation
        std::vector<TileEntry> &dst = parts[c];
        dst.reserve((ia[c + 1] - ia[c]) + (jb[c + 1] - jb[c]));
        size_t i = ia[c], j = jb[c];
        const size_t i_end = ia[c + 1], j_end = jb[c + 1];
        while (i < i_end && j < j_end) {
            if (entryDepthLess(b[j], a[i]))
                emit(b[j++], dst, nullptr);
            else
                emit(a[i++], dst, nullptr);
        }
        while (i < i_end)
            emit(a[i++], dst, nullptr);
        while (j < j_end)
            emit(b[j++], dst, nullptr);
    });
    if (failed.load(std::memory_order_relaxed))
        return false;

    out.clear();
    size_t emitted = 0;
    for (const auto &p : parts)
        emitted += p.size();
    out.reserve(emitted);
    for (const auto &p : parts)
        out.insert(out.end(), p.begin(), p.end());

    if (stats) {
        stats->compares += serialMergeCompares(a, b);
        ++stats->merges;
        stats->elements_processed += total;
        stats->filtered_invalid += total - emitted;
    }
    return true;
}

} // namespace

void
msuMerge(const std::vector<TileEntry> &a, const std::vector<TileEntry> &b,
         std::vector<TileEntry> &out, MsuStats *stats, int threads)
{
    if (threads > 1 && a.size() + b.size() >= kMsuParallelMinEntries &&
        !ThreadPool::insideParallelRegion() &&
        msuMergeSpeculative(a, b, out, stats, threads))
        return;

    out.clear();
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (stats)
            ++stats->compares;
        if (entryDepthLess(b[j], a[i]))
            emit(b[j++], out, stats);
        else
            emit(a[i++], out, stats);
    }
    while (i < a.size())
        emit(a[i++], out, stats);
    while (j < b.size())
        emit(b[j++], out, stats);
    if (stats) {
        ++stats->merges;
        stats->elements_processed += a.size() + b.size();
    }
}

int
msuMergeRuns(std::vector<TileEntry> &entries, size_t first, size_t count,
             size_t run, MsuStats *stats, int threads)
{
    if (count <= 1)
        return 0;
    int passes = 0;
    std::vector<TileEntry> scratch;
    scratch.reserve(count);
    while (run < count) {
        ++passes;
        const size_t stride = 2 * run;
        const size_t pairs = (count + stride - 1) / stride;
        if (threads > 1 && pairs > 1 &&
            count >= kMsuParallelMinEntries &&
            !ThreadPool::insideParallelRegion()) {
            // One level of the fixed-shape merge tree: the pairwise
            // merges are independent (disjoint [lo, hi) ranges), so they
            // fan out over the pool; counters are integer sums per merge
            // node, so per-chunk accumulation recombined in fixed chunk
            // order is bit-identical to the serial pass.
            struct PairAccum
            {
                MsuStats stats;
                std::vector<TileEntry> scratch;
            };
            for (const PairAccum &acc :
                 parallelForAccumulate<PairAccum>(
                     pairs, threads,
                     [&](size_t begin, size_t end, PairAccum &acc) {
                         for (size_t p = begin; p < end; ++p)
                             mergePairInPlace(entries, first, count,
                                              p * stride, run, acc.scratch,
                                              stats ? &acc.stats : nullptr);
                     }))
                if (stats)
                    *stats += acc.stats;
        } else {
            for (size_t lo = 0; lo < count; lo += stride)
                mergePairInPlace(entries, first, count, lo, run, scratch,
                                 stats);
        }
        run = stride;
    }
    return passes;
}

void
msuUpdateTable(const std::vector<TileEntry> &reused_sorted,
               const std::vector<TileEntry> &incoming_sorted,
               std::vector<TileEntry> &out, MsuStats *stats, int threads)
{
    msuMerge(reused_sorted, incoming_sorted, out, stats, threads);
}

} // namespace neo
