/**
 * @file
 * Chunk-granular sorting as performed by one Neo Sorting Core: a 256-entry
 * chunk is loaded into the input buffer, cut into 16-entry sub-chunks
 * sorted by the BSU, and merged into a fully sorted chunk by the MSU+.
 * Conventional (from-scratch) sorting of a whole table additionally runs a
 * global merge across chunks, which costs extra off-chip passes — the very
 * traffic Dynamic Partial Sorting avoids.
 */

#ifndef NEO_SORT_CHUNK_SORT_H
#define NEO_SORT_CHUNK_SORT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "gs/tile_sort.h"
#include "sort/bitonic.h"
#include "sort/merge_unit.h"

namespace neo
{

/** Default hardware chunk capacity (entries), per the paper. */
constexpr size_t kChunkSize = 256;

// The fused cross-tile batching grain (gs/tile_sort.h) deliberately
// reuses the chunk-sort granularity: one batch ≈ one hardware chunk of
// entries, the size below which per-problem bookkeeping dominates the
// sort itself. Keep the two in lockstep.
static_assert(kSortBatchGrain == kChunkSize,
              "fused sort batches must stay chunk-sized");

/** Combined counters of a sorting-core operation. */
struct SortCoreStats
{
    BsuStats bsu;
    MsuStats msu;
    uint64_t chunk_loads = 0;   //!< 256-entry chunk reads from DRAM
    uint64_t chunk_stores = 0;  //!< chunk writes back to DRAM
    uint64_t entries_read = 0;  //!< off-chip table entries read
    uint64_t entries_written = 0; //!< off-chip table entries written
    uint64_t global_merge_passes = 0; //!< extra off-chip passes

    SortCoreStats &operator+=(const SortCoreStats &o);
};

/**
 * Sort one chunk of @p entries in place (the [first, first+count) slice,
 * count <= kChunkSize) using the BSU + MSU pipeline. Counts one chunk load
 * and one chunk store.
 */
void sortChunk(std::vector<TileEntry> &entries, size_t first, size_t count,
               SortCoreStats *stats = nullptr);

/**
 * Conventional full sort of an entire tile table: chunk-sort every chunk,
 * then merge chunks globally. The global merge is modeled functionally
 * (result is fully sorted) and its off-chip cost is recorded as
 * ceil(log2(num_chunks)) extra read+write passes over the table.
 *
 * With @p threads > 1, long tables split across workers: the independent
 * 256-entry chunk sorts fan out over the pool, and the global merge runs
 * the parallel MSU+ merge tree (msuMergeRuns). Results and counters are
 * bit-identical for any thread count.
 */
void fullSortTable(std::vector<TileEntry> &table,
                   SortCoreStats *stats = nullptr, int threads = 1);

} // namespace neo

#endif // NEO_SORT_CHUNK_SORT_H
