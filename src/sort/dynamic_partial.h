/**
 * @file
 * Dynamic Partial Sorting — Algorithm 1 of the Neo paper.
 *
 * A tile's Gaussian table carried over from the previous frame is almost
 * sorted; rather than re-sorting globally, the algorithm sorts it chunk by
 * chunk (each chunk fits on-chip), reading and writing every entry exactly
 * once per frame. To let entries migrate across chunk boundaries over
 * time, the chunk grid is shifted by half a chunk on alternate frames
 * ("interleaved sorting boundaries", Fig. 9).
 */

#ifndef NEO_SORT_DYNAMIC_PARTIAL_H
#define NEO_SORT_DYNAMIC_PARTIAL_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sort/chunk_sort.h"

namespace neo
{

/** Tunables of Dynamic Partial Sorting. */
struct DynamicPartialConfig
{
    /** On-chip chunk capacity in entries (paper: 256). */
    size_t chunk = kChunkSize;
    /** Shift chunk boundaries by chunk/2 on even frames (paper: on). */
    bool interleave = true;
    /**
     * Off-chip sorting passes per frame. The paper adopts a single pass
     * (>=2 passes buy <0.1 dB quality for proportional extra traffic).
     */
    int passes = 1;
};

/**
 * Chunk boundaries for a table of length @p len on frame @p frame_index:
 * returns consecutive [start, end) offsets. With interleaving enabled,
 * even frames use a grid shifted by chunk/2 (the first chunk is a
 * half-chunk), which is how the algorithm's "range" update is realized.
 */
std::vector<std::pair<size_t, size_t>>
dynamicPartialBoundaries(size_t len, uint64_t frame_index,
                         const DynamicPartialConfig &cfg);

/**
 * Run Dynamic Partial Sorting on @p table in place.
 *
 * @param table previous frame's table with refreshed depth values
 * @param frame_index current frame number (selects boundary phase)
 * @param cfg tunables
 * @param stats optional hardware counters (chunk loads/stores, BSU/MSU ops)
 */
void dynamicPartialSort(std::vector<TileEntry> &table, uint64_t frame_index,
                        const DynamicPartialConfig &cfg = {},
                        SortCoreStats *stats = nullptr);

/**
 * Sortedness metric: fraction of adjacent pairs in depth order. 1.0 for a
 * sorted table; used by tests and the accuracy-restoration experiments.
 */
double sortedFraction(const std::vector<TileEntry> &table);

/**
 * Mean absolute displacement between each entry's position and its
 * position in the fully sorted permutation (0 for a sorted table).
 */
double meanDisplacement(const std::vector<TileEntry> &table);

} // namespace neo

#endif // NEO_SORT_DYNAMIC_PARTIAL_H
