#include "sort/dynamic_partial.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace neo
{

std::vector<std::pair<size_t, size_t>>
dynamicPartialBoundaries(size_t len, uint64_t frame_index,
                         const DynamicPartialConfig &cfg)
{
    std::vector<std::pair<size_t, size_t>> out;
    if (len == 0 || cfg.chunk == 0)
        return out;

    // Odd frames (and non-interleaved mode) use the natural grid
    // [0,C), [C,2C), ...; even frames shift by C/2 so the first chunk is a
    // half-chunk and Gaussians can cross the odd-frame boundaries.
    // (Algorithm 1 expresses this by initializing range.end to C or C/2;
    // we advance each range to the previous end, which is the behaviour
    // Fig. 9 depicts.)
    const bool shifted = cfg.interleave && (frame_index % 2 == 0);
    size_t start = 0;
    size_t end = shifted ? std::min(cfg.chunk / 2, len)
                         : std::min(cfg.chunk, len);
    for (;;) {
        if (end > start)
            out.emplace_back(start, end);
        if (end >= len)
            break;
        start = end;
        end = std::min(start + cfg.chunk, len);
    }
    return out;
}

void
dynamicPartialSort(std::vector<TileEntry> &table, uint64_t frame_index,
                   const DynamicPartialConfig &cfg, SortCoreStats *stats)
{
    if (cfg.passes < 1)
        panic("dynamicPartialSort: passes must be >= 1");
    for (int pass = 0; pass < cfg.passes; ++pass) {
        // Alternate the boundary phase across passes as well, otherwise
        // additional passes within a frame could not move entries across
        // the same fixed boundaries.
        auto ranges = dynamicPartialBoundaries(
            table.size(), frame_index + static_cast<uint64_t>(pass), cfg);
        for (auto [start, end] : ranges)
            sortChunk(table, start, end - start, stats);
    }
}

double
sortedFraction(const std::vector<TileEntry> &table)
{
    if (table.size() < 2)
        return 1.0;
    size_t ordered = 0;
    for (size_t i = 0; i + 1 < table.size(); ++i)
        if (!entryDepthLess(table[i + 1], table[i]))
            ++ordered;
    return static_cast<double>(ordered) /
           static_cast<double>(table.size() - 1);
}

double
meanDisplacement(const std::vector<TileEntry> &table)
{
    const size_t n = table.size();
    if (n < 2)
        return 0.0;
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return entryDepthLess(table[a], table[b]);
    });
    // order[k] = index in `table` of the k-th smallest entry; displacement
    // of that entry is |k - order[k]|.
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k) {
        acc += std::fabs(static_cast<double>(k) -
                         static_cast<double>(order[k]));
    }
    return acc / static_cast<double>(n);
}

} // namespace neo
