/**
 * @file
 * Tile rasterization — stage 4 of the 3DGS pipeline. Depth-sorted Gaussians
 * are alpha-blended front to back per pixel, with early termination once a
 * pixel's transmittance drops below a cutoff.
 *
 * The rasterizer implements the subtile optimization of GSCore/Neo: each
 * tile is subdivided into subtiles, a per-Gaussian intersection bitmap is
 * computed (the Intersection Test Unit in hardware), and per-pixel work is
 * skipped for subtiles the Gaussian does not touch. The cumulative OR of
 * the bitmaps yields the valid bit Neo uses to flag outgoing Gaussians.
 *
 * Two software implementations of the blend phase share that contract:
 *
 *  - the **subtile-blocked kernel** (default): entries are bucketed per
 *    subtile from the bitmaps, and each subtile's pixel block is blended
 *    to completion in contiguous SoA scratch planes through a survivor-
 *    batched pipeline — vectorized conic-power plane, survivor
 *    compaction, a batched branchless exp over the dense survivor list,
 *    then blending in survivor order (see raster.cpp);
 *  - the **scalar reference** (RasterConfig::reference_path): the
 *    historical Gaussian-major full-tile scan, kept for A/B testing.
 *
 * Both produce bit-identical pixels and RasterStats for any input; the
 * blocked-vs-reference tests in tests/test_raster.cpp pin that down.
 */

#ifndef NEO_GS_RASTER_H
#define NEO_GS_RASTER_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/image.h"
#include "gs/tiling.h"

namespace neo
{

/** Rasterizer configuration (defaults follow the Neo paper, Table 1). */
struct RasterConfig
{
    /** Subtile edge length in pixels (paper: 8x8). */
    int subtile_size = 8;
    /** Minimum per-pixel alpha for a Gaussian to contribute (1/255). */
    float alpha_threshold = 1.0f / 255.0f;
    /** Stop blending a pixel when transmittance falls below this. */
    float transmittance_cutoff = 1e-4f;
    /** Alpha is clamped to this maximum, as in the reference renderer. */
    float alpha_max = 0.99f;
    /**
     * Evaluate the falloff exponential with the deterministic polynomial
     * fastExpNegative() instead of std::exp. Changes pixel values within
     * the tested relative-error bound, but is a pure per-pixel function,
     * so frames stay bit-identical across thread counts and across the
     * blocked/reference paths (both honor the knob).
     */
    bool fast_exp = false;
    /**
     * Force the scalar Gaussian-major reference blend loop instead of the
     * subtile-blocked kernel (A/B testing and perf archaeology). Output
     * is bit-identical either way.
     */
    bool reference_path = false;
};

/** Work counters produced by rasterizing one tile. */
struct RasterStats
{
    uint64_t gaussians_in = 0;        //!< entries presented to the core
    uint64_t intersection_tests = 0;  //!< ITU subtile tests
    uint64_t gaussians_blended = 0;   //!< entries with >=1 subtile hit
    uint64_t blend_ops = 0;           //!< per-pixel alpha-blend operations
    uint64_t pixels_terminated = 0;   //!< pixels that hit the cutoff

    RasterStats &
    operator+=(const RasterStats &o)
    {
        gaussians_in += o.gaussians_in;
        intersection_tests += o.intersection_tests;
        gaussians_blended += o.gaussians_blended;
        blend_ops += o.blend_ops;
        pixels_terminated += o.pixels_terminated;
        return *this;
    }
};

/**
 * Per-Gaussian subtile intersection bitmap. Bit i corresponds to subtile i
 * in row-major order within the tile; a zero bitmap means the Gaussian
 * touches no subtile (it is "outgoing" for reuse-and-update sorting).
 */
using SubtileBitmap = uint64_t;

/**
 * Intersection Test Unit model: conservative test of a Gaussian footprint
 * (screen center + radius) against every subtile of a tile. This SoA form
 * is the hot path; the squared radius is hoisted out of the loop and the
 * subtile origins advance incrementally (both exact in float, since all
 * quantities involved are small integers).
 */
SubtileBitmap subtileBitmap(Vec2 mean2d, float radius_px, Vec2 tile_origin,
                            int tile_size, int subtile_size);

/** Convenience overload reading the footprint from @p pg. */
inline SubtileBitmap
subtileBitmap(const ProjectedGaussian &pg, Vec2 tile_origin, int tile_size,
              int subtile_size)
{
    return subtileBitmap(pg.mean2d, pg.radius_px, tile_origin, tile_size,
                         subtile_size);
}

/**
 * Deterministic polynomial approximation of std::exp for x <= 0, used by
 * the blend loops when RasterConfig::fast_exp is set. Pure float
 * arithmetic in a fixed operation order — the result depends only on x,
 * never on thread count or call site. Relative error is bounded by
 * kFastExpMaxRelError (asserted by tests against std::exp over the whole
 * falloff range); exact at x == 0 and exactly 0 below the flush point.
 */
float fastExpNegative(float x);

/** Tested relative-error bound of fastExpNegative on [-87, 0]. */
constexpr float kFastExpMaxRelError = 2e-6f;

/**
 * Lane width (floats) the survivor exp batch is padded to: the blocked
 * kernel rounds each survivor list up to a multiple of this with neutral
 * lanes, so the batch loop runs whole fixed-width groups and the
 * compiler vectorizes it without a scalar epilogue.
 */
constexpr uint32_t kSurvivorExpBatch = 8;

/**
 * Branchless single-lane form of fastExpNegative, bit-identical to it
 * on the function's whole specified domain — x <= 0 (including -0.0,
 * denormals and -inf) and NaN — which is asserted exhaustively by
 * tests; that is also the only domain the survivor batch can produce
 * (the compaction predicate rejects positive powers). Written so the
 * exp batch loop of the blocked kernel auto-vectorizes: the range/NaN
 * conditionals are explicit bit-mask selects (a plain ternary is
 * turned back into a branch by GCC, which then refuses to vectorize
 * the loop), and std::floor is replaced by the exact
 * truncate-and-adjust idiom — everything lowers to SIMD compares,
 * logicals and integer conversions. Defined for every input: underflow
 * and NaN lanes run the polynomial on a clamped stand-in (keeping the
 * float->int conversion defined) with the genuine result (0, or the
 * propagated NaN with its payload) selected at the end, and positive
 * inputs — outside the specified domain, where the scalar form would
 * overflow its exponent arithmetic — clamp to +0 and so saturate to
 * exp(0) == 1.
 */
inline float
fastExpNegativeLane(float x)
{
    // All-ones when the polynomial path applies (false for NaN too).
    const uint32_t in_range = 0u - static_cast<uint32_t>(x >= -87.0f);
    // All-ones for positive x (out of domain): clamped to +0 below.
    const uint32_t positive = 0u - static_cast<uint32_t>(x > 0.0f);
    // xs = positive ? +0.0f : (in_range ? x : -1.0f), as bits.
    const float xs = std::bit_cast<float>(
        ((std::bit_cast<uint32_t>(x) & in_range) |
         (std::bit_cast<uint32_t>(-1.0f) & ~in_range)) &
        ~positive);
    const float y = xs * 1.44269504f + 0.5f; // x * log2(e), pre-floor
    int32_t ni = static_cast<int32_t>(y);    // truncation toward zero
    ni -= static_cast<float>(ni) > y;        // exact floor for y < 2^31
    const float n = static_cast<float>(ni);
    const float u = (xs - n * 0.693359375f) + n * 2.12194440e-4f;
    float p = 1.38888889e-3f;               // 1/720
    p = p * u + 8.33333333e-3f;             // 1/120
    p = p * u + 4.16666667e-2f;             // 1/24
    p = p * u + 1.66666667e-1f;             // 1/6
    p = p * u + 0.5f;
    p = p * u + 1.0f;
    p = p * u + 1.0f;
    const float scale =
        std::bit_cast<float>(static_cast<uint32_t>(127 + ni) << 23);
    const float r = p * scale;
    // Select: in-range -> r, underflow -> +0.0f, NaN -> x (payload kept,
    // as in std::exp).
    const uint32_t nan_mask = 0u - static_cast<uint32_t>(x != x);
    const uint32_t ri =
        (std::bit_cast<uint32_t>(r) & in_range & ~nan_mask) |
        (std::bit_cast<uint32_t>(x) & nan_mask);
    return std::bit_cast<float>(ri);
}

/**
 * Identifier of the blocked blend kernel generation, recorded in the
 * trajectory JSON (bench_scaling --json) so every BENCH_PR<n>.json is
 * self-describing about which kernel produced its numbers.
 */
constexpr const char *kRasterKernelVariant =
    "subtile-blocked/survivor-batched";

/**
 * Reusable working memory of rasterizeTile. One instance per worker
 * thread (or one for the serial path) amortizes the per-call vector
 * allocations across all tiles the worker rasterizes; every element is
 * overwritten before use, so reuse cannot change results.
 *
 * The first block of vectors serves the ITU pass and the scalar reference
 * blend; the rest is the subtile-blocked kernel's working set: one SoA
 * array per hot Gaussian field (compacted over the entries that hit at
 * least one subtile), the CSR subtile buckets, and the per-block pixel
 * planes (transmittance / r / g / b / falloff power), each
 * subtile_size^2 floats and contiguous by construction.
 */
struct RasterScratch
{
    std::vector<SubtileBitmap> bitmaps;
    // Scalar reference blend planes.
    std::vector<float> transmittance;
    std::vector<Vec3> accum;
    std::vector<uint8_t> done;
    // Blocked kernel: compacted per-Gaussian SoA (front-to-back order).
    std::vector<float> gauss_mean_x;
    std::vector<float> gauss_mean_y;
    std::vector<float> gauss_conic_a;
    std::vector<float> gauss_conic_b;
    std::vector<float> gauss_conic_c;
    std::vector<float> gauss_opacity;
    std::vector<float> gauss_power_cut;
    // Conservative squared half-extents of the cut ellipse (see
    // blendBlocked): pixels farther than these from the center along an
    // axis provably cannot reach the skip cut.
    std::vector<float> gauss_dx_bound_sq;
    std::vector<float> gauss_dy_bound_sq;
    std::vector<Vec3> gauss_color;
    // Blocked kernel: CSR buckets mapping subtile -> covering Gaussians.
    std::vector<uint32_t> bucket_offsets;
    std::vector<uint32_t> bucket_entries;
    // Blocked kernel: survivor batch — pixel indices that reach the exp,
    // their powers gathered dense (tail-padded to kSurvivorExpBatch),
    // and the evaluated falloffs.
    std::vector<uint32_t> surv_idx;
    std::vector<float> surv_pow;
    std::vector<float> surv_exp;
    // Blocked kernel: per-block SoA pixel planes and pixel-center coords.
    std::vector<float> block_power;
    std::vector<float> block_t;
    std::vector<float> block_r;
    std::vector<float> block_g;
    std::vector<float> block_b;
    std::vector<float> block_cx;
    std::vector<float> block_cy;

    /**
     * Bytes of heap capacity currently held by every member vector.
     * Surfaced through FrameArena::retainedBytes (the raster accumulators
     * expose it), so the steady-state no-regrowth test also covers this
     * nested scratch.
     */
    size_t capacityBytes() const;
};

/**
 * Rasterize one tile.
 *
 * Blend order is per pixel, front to back in entry order; the blocked and
 * reference paths produce bit-identical pixels and stats (see file
 * comment). The blocked kernel requires the frame's SoA feature arrays
 * and a subtile size dividing the tile size; otherwise the call falls
 * back to the reference loop.
 *
 * @param entries depth-sorted tile entries (front to back)
 * @param frame binned frame carrying the feature table
 * @param tile index of the tile in the frame's grid
 * @param cfg rasterizer configuration
 * @param image output framebuffer, or nullptr for a stats-only dry run
 * @param valid_out when non-null, resized to entries.size() and set to the
 *        per-entry valid bit (>=1 subtile intersection)
 * @param scratch optional reusable working memory; nullptr allocates
 *        locally (one-shot callers, tests)
 * @param integrity when non-null and enabled, the blocked kernel fences
 *        its CSR bucket bounds (digest + monotonicity/bounds invariants)
 *        after the scatter and falls back to the scalar reference blend
 *        on mismatch — before any pixel is written, so a corrupted CSR is
 *        never consumed
 * @return work counters for the tile
 */
class IntegrityContext;

RasterStats rasterizeTile(const std::vector<TileEntry> &entries,
                          const BinnedFrame &frame, int tile,
                          const RasterConfig &cfg, Image *image,
                          std::vector<uint8_t> *valid_out = nullptr,
                          RasterScratch *scratch = nullptr,
                          IntegrityContext *integrity = nullptr);

/**
 * Estimate the blend work of a tile without touching pixels. Used by the
 * workload-extraction path where full rasterization would dominate runtime.
 * The estimate walks the sorted entries once, tracking mean transmittance
 * with per-entry coverage from the subtile bitmap.
 */
uint64_t estimateTileBlendOps(const std::vector<TileEntry> &entries,
                              const BinnedFrame &frame, int tile,
                              const RasterConfig &cfg);

} // namespace neo

#endif // NEO_GS_RASTER_H
