/**
 * @file
 * Tile rasterization — stage 4 of the 3DGS pipeline. Depth-sorted Gaussians
 * are alpha-blended front to back per pixel, with early termination once a
 * pixel's transmittance drops below a cutoff.
 *
 * The rasterizer implements the subtile optimization of GSCore/Neo: each
 * tile is subdivided into subtiles, a per-Gaussian intersection bitmap is
 * computed (the Intersection Test Unit in hardware), and per-pixel work is
 * skipped for subtiles the Gaussian does not touch. The cumulative OR of
 * the bitmaps yields the valid bit Neo uses to flag outgoing Gaussians.
 */

#ifndef NEO_GS_RASTER_H
#define NEO_GS_RASTER_H

#include <cstdint>
#include <vector>

#include "common/image.h"
#include "gs/tiling.h"

namespace neo
{

/** Rasterizer configuration (defaults follow the Neo paper, Table 1). */
struct RasterConfig
{
    /** Subtile edge length in pixels (paper: 8x8). */
    int subtile_size = 8;
    /** Minimum per-pixel alpha for a Gaussian to contribute (1/255). */
    float alpha_threshold = 1.0f / 255.0f;
    /** Stop blending a pixel when transmittance falls below this. */
    float transmittance_cutoff = 1e-4f;
    /** Alpha is clamped to this maximum, as in the reference renderer. */
    float alpha_max = 0.99f;
};

/** Work counters produced by rasterizing one tile. */
struct RasterStats
{
    uint64_t gaussians_in = 0;        //!< entries presented to the core
    uint64_t intersection_tests = 0;  //!< ITU subtile tests
    uint64_t gaussians_blended = 0;   //!< entries with >=1 subtile hit
    uint64_t blend_ops = 0;           //!< per-pixel alpha-blend operations
    uint64_t pixels_terminated = 0;   //!< pixels that hit the cutoff

    RasterStats &
    operator+=(const RasterStats &o)
    {
        gaussians_in += o.gaussians_in;
        intersection_tests += o.intersection_tests;
        gaussians_blended += o.gaussians_blended;
        blend_ops += o.blend_ops;
        pixels_terminated += o.pixels_terminated;
        return *this;
    }
};

/**
 * Per-Gaussian subtile intersection bitmap. Bit i corresponds to subtile i
 * in row-major order within the tile; a zero bitmap means the Gaussian
 * touches no subtile (it is "outgoing" for reuse-and-update sorting).
 */
using SubtileBitmap = uint64_t;

/**
 * Intersection Test Unit model: conservative test of a Gaussian footprint
 * (screen center + radius) against every subtile of a tile. This SoA form
 * is the hot path; the squared radius is hoisted out of the loop and the
 * subtile origins advance incrementally (both exact in float, since all
 * quantities involved are small integers).
 */
SubtileBitmap subtileBitmap(Vec2 mean2d, float radius_px, Vec2 tile_origin,
                            int tile_size, int subtile_size);

/** Convenience overload reading the footprint from @p pg. */
inline SubtileBitmap
subtileBitmap(const ProjectedGaussian &pg, Vec2 tile_origin, int tile_size,
              int subtile_size)
{
    return subtileBitmap(pg.mean2d, pg.radius_px, tile_origin, tile_size,
                         subtile_size);
}

/**
 * Reusable working memory of rasterizeTile. One instance per worker
 * thread (or one for the serial path) amortizes the four per-call vector
 * allocations across all tiles the worker rasterizes; every element is
 * overwritten before use, so reuse cannot change results.
 */
struct RasterScratch
{
    std::vector<SubtileBitmap> bitmaps;
    std::vector<float> transmittance;
    std::vector<Vec3> accum;
    std::vector<uint8_t> done;
};

/**
 * Rasterize one tile.
 *
 * @param entries depth-sorted tile entries (front to back)
 * @param frame binned frame carrying the feature table
 * @param tile index of the tile in the frame's grid
 * @param cfg rasterizer configuration
 * @param image output framebuffer, or nullptr for a stats-only dry run
 * @param valid_out when non-null, resized to entries.size() and set to the
 *        per-entry valid bit (>=1 subtile intersection)
 * @param scratch optional reusable working memory; nullptr allocates
 *        locally (one-shot callers, tests)
 * @return work counters for the tile
 */
RasterStats rasterizeTile(const std::vector<TileEntry> &entries,
                          const BinnedFrame &frame, int tile,
                          const RasterConfig &cfg, Image *image,
                          std::vector<uint8_t> *valid_out = nullptr,
                          RasterScratch *scratch = nullptr);

/**
 * Estimate the blend work of a tile without touching pixels. Used by the
 * workload-extraction path where full rasterization would dominate runtime.
 * The estimate walks the sorted entries once, tracking mean transmittance
 * with per-entry coverage from the subtile bitmap.
 */
uint64_t estimateTileBlendOps(const std::vector<TileEntry> &entries,
                              const BinnedFrame &frame, int tile,
                              const RasterConfig &cfg);

} // namespace neo

#endif // NEO_GS_RASTER_H
