/**
 * @file
 * Fused cross-tile depth sorting: the per-tile orderings a frame needs
 * are thousands of small independent sorts, so the pipeline packs them
 * into ~256-entry weighted batches (one pool dispatch per batch instead
 * of per tile) and sorts each tile through a packed-key kernel that is
 * bit-identical to std::sort(entryDepthLess). Lives in gs/ — below the
 * sorting-core models of sort/, which reuse it — because the renderer's
 * prepare path is its hottest caller.
 */

#ifndef NEO_GS_TILE_SORT_H
#define NEO_GS_TILE_SORT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "gs/tiling.h"

namespace neo
{

/**
 * Batching threshold of the fused cross-tile sort path: tiles smaller
 * than this pack together until a batch reaches ~one hardware chunk of
 * entries, so the pool dispatches per ~256-entry batch instead of per
 * 3-entry tile. Mirrors the sorting core's chunk capacity (kChunkSize in
 * sort/chunk_sort.h, static_assert-ed there) on purpose — it is the size
 * below which per-problem bookkeeping dominates the sort itself.
 */
constexpr size_t kSortBatchGrain = 256;

/** Reusable per-worker scratch of the key-sort kernel (the packed keys). */
struct TileSortScratch
{
    std::vector<uint64_t> keys;

    /** Nested heap capacity, surfaced to FrameArena::retainedBytes. */
    size_t capacityBytes() const
    {
        return keys.capacity() * sizeof(uint64_t);
    }
};

/**
 * Reusable working set of sortTablesBatched: the fused batch ranges plus
 * one TileSortScratch per pool chunk, both capacity-retained across
 * frames so the steady-state loop allocates nothing.
 */
struct BatchSortScratch
{
    std::vector<ParallelRange> batches;
    std::vector<TileSortScratch> per_chunk;

    size_t capacityBytes() const
    {
        size_t total = batches.capacity() * sizeof(ParallelRange) +
                       per_chunk.capacity() * sizeof(TileSortScratch);
        for (const TileSortScratch &s : per_chunk)
            total += s.capacityBytes();
        return total;
    }
};

/**
 * Sort @p table into exactly the permutation std::sort(entryDepthLess)
 * produces, but through packed 64-bit keys: {depth bits flipped to
 * unsigned order : 32 | id : 32}, sorted with a branchless integer
 * compare and unpacked back. Bit-identical to the comparator sort
 * because entryDepthLess *is* the lexicographic (depth, id) order and
 * ids are unique within a tile.
 *
 * Irregular inputs — a cleared valid bit (whose placement the key cannot
 * carry) or a -0.0f depth (equal to +0.0f under the comparator but
 * distinct in key space) — are detected during key packing and take the
 * comparator path, so the kernel is unconditionally exact. Neither
 * occurs in freshly binned tiles, the fast path's call sites.
 */
void keySortTable(std::vector<TileEntry> &table, TileSortScratch &scratch);

/**
 * Sort every table with the key-sort kernel through one fused batched
 * dispatch: small tiles pack into ~kSortBatchGrain-entry batches
 * (buildWeightedBatchesInto) and the pool executes batches, not tiles.
 * Output is bit-identical to per-tile std::sort(entryDepthLess) at any
 * thread count; each tile's result lands in place, i.e. in tile-index
 * order. @p grain is the batching threshold knob (entries per fused
 * batch); @p scratch is reused across frames.
 */
void sortTablesBatched(std::vector<std::vector<TileEntry>> &tables,
                       int threads, BatchSortScratch &scratch,
                       size_t grain = kSortBatchGrain);

} // namespace neo

#endif // NEO_GS_TILE_SORT_H
