/**
 * @file
 * Pinhole camera with a world-to-camera rigid transform. Camera space is
 * right-handed with +z pointing into the scene (depth = camera-space z),
 * matching the 3DGS reference renderer.
 */

#ifndef NEO_GS_CAMERA_H
#define NEO_GS_CAMERA_H

#include "common/math.h"

namespace neo
{

/** Render-target resolution presets used throughout the evaluation. */
struct Resolution
{
    int width = 1280;
    int height = 720;
    const char *name = "HD";

    long pixels() const { return static_cast<long>(width) * height; }
};

constexpr Resolution kResHD{1280, 720, "HD"};
constexpr Resolution kResFHD{1920, 1080, "FHD"};
constexpr Resolution kResQHD{2560, 1440, "QHD"};

/** Pinhole camera: intrinsics plus world-to-camera pose. */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param res render-target resolution
     * @param fov_y_rad vertical field of view in radians
     */
    Camera(Resolution res, float fov_y_rad);

    /** Place the camera at @p eye looking at @p target with @p up hint. */
    void lookAt(const Vec3 &eye, const Vec3 &target,
                const Vec3 &up = {0.0f, 1.0f, 0.0f});

    int width() const { return res_.width; }
    int height() const { return res_.height; }
    Resolution resolution() const { return res_; }
    float focalX() const { return focal_x_; }
    float focalY() const { return focal_y_; }
    float fovY() const { return fov_y_; }
    const Vec3 &position() const { return eye_; }
    const Mat4 &worldToCamera() const { return world_to_camera_; }

    /** Transform a world point into camera space (z is depth). */
    Vec3 toCameraSpace(const Vec3 &world) const
    {
        return world_to_camera_.transformPoint(world);
    }

    /**
     * Project a camera-space point to pixel coordinates. Caller must ensure
     * cam.z > 0.
     */
    Vec2 toScreen(const Vec3 &cam) const
    {
        return {
            focal_x_ * cam.x / cam.z + 0.5f * res_.width,
            focal_y_ * cam.y / cam.z + 0.5f * res_.height,
        };
    }

    /** Viewing direction from the camera to a world-space point. */
    Vec3 viewDirection(const Vec3 &world) const
    {
        return (world - eye_).normalized();
    }

  private:
    Resolution res_ = kResHD;
    float fov_y_ = deg2rad(50.0f);
    float focal_x_ = 1.0f;
    float focal_y_ = 1.0f;
    Vec3 eye_;
    Mat4 world_to_camera_ = Mat4::identity();
};

} // namespace neo

#endif // NEO_GS_CAMERA_H
