#include "gs/camera.h"

#include <cmath>

namespace neo
{

Camera::Camera(Resolution res, float fov_y_rad)
    : res_(res), fov_y_(fov_y_rad)
{
    focal_y_ = 0.5f * res.height / std::tan(0.5f * fov_y_rad);
    focal_x_ = focal_y_; // square pixels
}

void
Camera::lookAt(const Vec3 &eye, const Vec3 &target, const Vec3 &up)
{
    eye_ = eye;
    Vec3 fwd = (target - eye).normalized();
    Vec3 right = fwd.cross(up).normalized();
    if (right.norm() < 1e-6f) {
        // Degenerate up vector: pick any perpendicular axis.
        right = fwd.cross({1.0f, 0.0f, 0.0f}).normalized();
        if (right.norm() < 1e-6f)
            right = fwd.cross({0.0f, 0.0f, 1.0f}).normalized();
    }
    Vec3 down = fwd.cross(right); // +y down to match pixel coordinates

    // Rows of the rotation block are the camera axes; +z looks forward.
    Mat4 m = Mat4::identity();
    m(0, 0) = right.x; m(0, 1) = right.y; m(0, 2) = right.z;
    m(1, 0) = down.x;  m(1, 1) = down.y;  m(1, 2) = down.z;
    m(2, 0) = fwd.x;   m(2, 1) = fwd.y;   m(2, 2) = fwd.z;
    m(0, 3) = -right.dot(eye);
    m(1, 3) = -down.dot(eye);
    m(2, 3) = -fwd.dot(eye);
    world_to_camera_ = m;
}

} // namespace neo
