/**
 * @file
 * Feature extraction: projecting 3D Gaussians to screen space. Implements
 * the EWA splatting approximation used by 3DGS — the 3D covariance is
 * transformed by the view rotation and the Jacobian of the perspective
 * projection to produce a 2D covariance, from which the conic (inverse
 * covariance) and the 3-sigma screen radius are derived.
 */

#ifndef NEO_GS_PROJECTION_H
#define NEO_GS_PROJECTION_H

#include <optional>
#include <vector>

#include "gs/camera.h"
#include "gs/gaussian.h"

namespace neo
{

/** Near plane below which Gaussians are culled. */
constexpr float kNearPlane = 0.05f;

/** Dilation added to the 2D covariance diagonal (antialiasing, as 3DGS). */
constexpr float kCovarianceDilation = 0.3f;

/**
 * Project a single Gaussian.
 *
 * @param g the source Gaussian
 * @param id its scene id, copied into the result
 * @param camera viewing camera
 * @return the projected 2D Gaussian, or std::nullopt if it is behind the
 *         near plane, degenerate, or its opacity contribution vanishes.
 */
std::optional<ProjectedGaussian>
projectGaussian(const Gaussian &g, GaussianId id, const Camera &camera);

/**
 * projectGaussian with the camera's world-to-camera rotation block
 * precomputed — per-frame loops hoist it out of the per-Gaussian body
 * (it only depends on the camera). Results are identical.
 */
std::optional<ProjectedGaussian>
projectGaussian(const Gaussian &g, GaussianId id, const Camera &camera,
                const Mat3 &cam_rotation);

/**
 * EWA 2D covariance of a camera-space Gaussian.
 *
 * @param cov3d_cam covariance already rotated into camera space
 * @param cam camera-space mean
 * @param focal_x focal length in pixels (x)
 * @param focal_y focal length in pixels (y)
 * @return upper-triangular (a, b, c) of the symmetric 2x2 covariance
 */
Vec3 ewaCovariance2d(const Mat3 &cov3d_cam, const Vec3 &cam, float focal_x,
                     float focal_y);

/**
 * Frustum-cull and project every Gaussian of @p scene (pipeline stages
 * 1-2 for a whole frame, including the SH color evaluation). Slot i of the
 * result always corresponds to Gaussian i, and each slot is a pure
 * function of (scene[i], camera), so the output is bit-identical for any
 * thread count.
 *
 * @param threads requested thread count (resolveThreadCount semantics:
 *        0 defers to NEO_THREADS, default serial)
 */
std::vector<std::optional<ProjectedGaussian>>
projectScene(const GaussianScene &scene, const Camera &camera,
             int threads = 0);

/**
 * projectScene into a caller-owned slot array, reusing its capacity. The
 * vector is reset to scene.size() nullopt slots first, so stale entries
 * from a previous frame can never leak through.
 */
void projectSceneInto(std::vector<std::optional<ProjectedGaussian>> &out,
                      const GaussianScene &scene, const Camera &camera,
                      int threads = 0);

} // namespace neo

#endif // NEO_GS_PROJECTION_H
