#include "gs/sh.h"

#include <algorithm>

namespace neo
{

namespace
{
// Real SH constants for bands 0-2.
constexpr float kC0 = 0.28209479177387814f;
constexpr float kC1 = 0.4886025119029199f;
constexpr float kC2[5] = {
    1.0925484305920792f,
    -1.0925484305920792f,
    0.31539156525252005f,
    -1.0925484305920792f,
    0.5462742152960396f,
};
} // namespace

void
shBasis(const Vec3 &dir, float basis[kShCoeffsPerChannel])
{
    const float x = dir.x, y = dir.y, z = dir.z;
    basis[0] = kC0;
    basis[1] = -kC1 * y;
    basis[2] = kC1 * z;
    basis[3] = -kC1 * x;
    basis[4] = kC2[0] * x * y;
    basis[5] = kC2[1] * y * z;
    basis[6] = kC2[2] * (2.0f * z * z - x * x - y * y);
    basis[7] = kC2[3] * x * z;
    basis[8] = kC2[4] * (x * x - y * y);
}

Vec3
shColor(const Gaussian &g, const Vec3 &dir)
{
    float basis[kShCoeffsPerChannel];
    shBasis(dir, basis);
    Vec3 c{0.5f, 0.5f, 0.5f}; // 3DGS DC offset
    for (int i = 0; i < kShCoeffsPerChannel; ++i) {
        c.x += g.sh[0][i] * basis[i];
        c.y += g.sh[1][i] * basis[i];
        c.z += g.sh[2][i] * basis[i];
    }
    c.x = std::max(c.x, 0.0f);
    c.y = std::max(c.y, 0.0f);
    c.z = std::max(c.z, 0.0f);
    return c;
}

void
setShFromColor(Gaussian &g, const Vec3 &base, float directional,
               const Vec3 &dir_seed)
{
    // Invert the DC convention: channel = 0.5 + sh[0] * kC0.
    g.sh[0][0] = (base.x - 0.5f) / kC0;
    g.sh[1][0] = (base.y - 0.5f) / kC0;
    g.sh[2][0] = (base.z - 0.5f) / kC0;
    for (int c = 0; c < 3; ++c)
        for (int i = 1; i < kShCoeffsPerChannel; ++i)
            g.sh[c][i] = 0.0f;
    if (directional > 0.0f) {
        // Seed the three linear (band-1) coefficients so the color varies
        // smoothly with viewing direction, as trained scenes do.
        const float s[3] = {dir_seed.x, dir_seed.y, dir_seed.z};
        for (int c = 0; c < 3; ++c)
            for (int i = 0; i < 3; ++i)
                g.sh[c][1 + i] = directional * s[i] * (c == i ? 1.0f : 0.5f);
    }
}

} // namespace neo
