#include "gs/prune.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace neo
{

float
pruneImportance(const Gaussian &g, PruneCriterion criterion)
{
    switch (criterion) {
      case PruneCriterion::Opacity:
        return g.opacity;
      case PruneCriterion::OpacityVolume: {
        float mean_scale = (g.scale.x + g.scale.y + g.scale.z) / 3.0f;
        return g.opacity * mean_scale * mean_scale;
      }
    }
    return g.opacity;
}

PruneResult
pruneByThreshold(GaussianScene &scene, float threshold,
                 PruneCriterion criterion)
{
    PruneResult r;
    r.before = scene.size();
    auto it = std::remove_if(
        scene.gaussians.begin(), scene.gaussians.end(),
        [&](const Gaussian &g) {
            return pruneImportance(g, criterion) < threshold;
        });
    scene.gaussians.erase(it, scene.gaussians.end());
    r.after = scene.size();
    recomputeBounds(scene);
    return r;
}

PruneResult
pruneToFraction(GaussianScene &scene, double keep_fraction,
                PruneCriterion criterion)
{
    if (keep_fraction < 0.0 || keep_fraction > 1.0)
        fatal("pruneToFraction: keep_fraction %.3f outside [0, 1]",
              keep_fraction);
    PruneResult r;
    r.before = scene.size();
    size_t keep = static_cast<size_t>(keep_fraction * scene.size() + 0.5);
    if (keep >= scene.size()) {
        r.after = scene.size();
        return r;
    }
    if (keep == 0) {
        scene.gaussians.clear();
        recomputeBounds(scene);
        r.after = 0;
        return r;
    }

    // Find the importance cutoff via nth_element on a score copy, then
    // filter in place preserving order.
    std::vector<float> scores;
    scores.reserve(scene.size());
    for (const auto &g : scene.gaussians)
        scores.push_back(pruneImportance(g, criterion));
    std::vector<float> sorted = scores;
    std::nth_element(sorted.begin(),
                     sorted.begin() + (scene.size() - keep), sorted.end());
    float cutoff = sorted[scene.size() - keep];

    std::vector<Gaussian> kept;
    kept.reserve(keep);
    size_t at_cutoff_budget = keep;
    // First count strictly-above entries so ties at the cutoff fill the
    // remaining budget deterministically (front to back).
    size_t above = 0;
    for (float s : scores)
        if (s > cutoff)
            ++above;
    at_cutoff_budget = keep - std::min(keep, above);
    for (size_t i = 0; i < scene.size(); ++i) {
        if (scores[i] > cutoff) {
            kept.push_back(scene.gaussians[i]);
        } else if (scores[i] == cutoff && at_cutoff_budget > 0) {
            kept.push_back(scene.gaussians[i]);
            --at_cutoff_budget;
        }
    }
    scene.gaussians = std::move(kept);
    r.after = scene.size();
    recomputeBounds(scene);
    return r;
}

} // namespace neo
