#include "gs/gaussian.h"

#include <algorithm>
#include <cmath>

namespace neo
{

void
recomputeBounds(GaussianScene &scene)
{
    if (scene.empty()) {
        scene.center = {0.0f, 0.0f, 0.0f};
        scene.bounding_radius = 1.0f;
        return;
    }
    Vec3 acc{0.0f, 0.0f, 0.0f};
    for (const auto &g : scene.gaussians)
        acc += g.position;
    scene.center = acc / static_cast<float>(scene.size());

    float max_r2 = 0.0f;
    for (const auto &g : scene.gaussians) {
        Vec3 d = g.position - scene.center;
        float extent = 3.0f * std::max({g.scale.x, g.scale.y, g.scale.z});
        float r = d.norm() + extent;
        max_r2 = std::max(max_r2, r * r);
    }
    scene.bounding_radius = std::sqrt(max_r2);
}

} // namespace neo
