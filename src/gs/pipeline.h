/**
 * @file
 * End-to-end 3DGS rendering pipeline (culling -> feature extraction ->
 * sorting -> rasterization) with per-frame statistics.
 *
 * Two operating modes:
 *  - render(): full image synthesis (quality experiments, Table 2/Fig 19);
 *  - extractWorkload(): runs culling/projection/binning/sorting and
 *    *estimates* rasterization work without touching pixels. This is what
 *    drives the cycle-level performance models at QHD scale, mirroring how
 *    the paper's cycle-accurate simulator is trace-driven.
 */

#ifndef NEO_GS_PIPELINE_H
#define NEO_GS_PIPELINE_H

#include <cstdint>
#include <vector>

#include "common/image.h"
#include "common/integrity.h"
#include "gs/camera.h"
#include "gs/raster.h"
#include "gs/tiling.h"

namespace neo
{

class FrameArena;

/** Pipeline configuration. */
struct PipelineOptions
{
    /** Tile edge in pixels (Neo paper uses 64, GSCore/3DGS use 16). */
    int tile_px = 16;
    /**
     * Worker threads for the per-Gaussian and per-tile stages.
     * 0 defers to the NEO_THREADS environment variable (default: serial),
     * a positive value is used verbatim, and -1 means one thread per
     * hardware core (see common/parallel.h). Results are bit-identical
     * for every setting — threads only changes wall-clock time.
     */
    int threads = 0;
    RasterConfig raster;
    /**
     * Integrity-hardened serving mode (see common/integrity.h). Unset
     * defers to the NEO_INTEGRITY environment variable (default: off).
     */
    IntegrityMode integrity = IntegrityMode::Unset;
};

/**
 * Per-frame workload descriptor consumed by the timing models in sim/.
 * Everything is a count of functional work; the models turn counts into
 * cycles and DRAM bytes.
 */
struct FrameWorkload
{
    Resolution res;
    int tile_size = 16;
    uint64_t scene_gaussians = 0;   //!< total Gaussians in the scene
    uint64_t visible_gaussians = 0; //!< after frustum culling
    uint64_t instances = 0;         //!< after duplication (sum tile lists)
    std::vector<uint32_t> tile_lengths; //!< per-tile table length
    uint64_t blend_ops = 0;             //!< alpha-blend operations
    uint64_t intersection_tests = 0;    //!< ITU subtile tests

    // Temporal deltas versus the previous frame (zero for the first frame
    // and for from-scratch pipelines that do not track reuse).
    uint64_t incoming_instances = 0; //!< new (tile, id) pairs this frame
    uint64_t outgoing_instances = 0; //!< (tile, id) pairs that vanished
    double mean_tile_retention = 1.0; //!< mean shared fraction per tile

    /** Tiles with at least one Gaussian. */
    uint64_t nonEmptyTiles() const;
    /** Mean table length over non-empty tiles. */
    double meanTileLength() const;
};

/**
 * Per-stage wall-clock of one staged frame: binning scatter, per-tile
 * depth sort, rasterization, and delta tracking, each in milliseconds.
 * Produced by the staged thread sweep (sim/perf_harness.h, as mean
 * ms/frame) and by NeoRenderer::renderFrameTimed (per frame); consumed
 * by the serving layer's budget controller and stage watchdogs.
 */
struct StageTimings
{
    double bin_ms = 0.0;
    double sort_ms = 0.0;
    double raster_ms = 0.0;
    double tracker_ms = 0.0;

    double totalMs() const
    {
        return bin_ms + sort_ms + raster_ms + tracker_ms;
    }
};

/** Counters describing one fully rendered frame. */
struct FrameStats
{
    uint64_t scene_gaussians = 0;
    uint64_t visible_gaussians = 0;
    uint64_t instances = 0;
    RasterStats raster;
    double mean_tile_length = 0.0;
    /** Integrity cross-check summary (mode Off, empty when disabled). */
    IntegrityFrameStats integrity;
};

/** Baseline renderer that re-sorts every tile from scratch each frame. */
class Renderer
{
  public:
    explicit Renderer(PipelineOptions opts = {}) : opts_(opts) {}

    const PipelineOptions &options() const { return opts_; }

    /** Cull, project, bin and depth-sort one frame. */
    BinnedFrame prepare(const GaussianScene &scene,
                        const Camera &camera) const;

    /**
     * prepare() into caller-owned storage: @p frame and the binning
     * scratch in @p arena are refilled with capacity retained, so a warm
     * steady-state loop prepares frames without per-frame heap churn.
     */
    void prepareInto(BinnedFrame &frame, FrameArena &arena,
                     const GaussianScene &scene, const Camera &camera) const;

    /** Full render with ground-truth per-tile depth sorting. */
    Image render(const GaussianScene &scene, const Camera &camera,
                 FrameStats *stats = nullptr) const;

    /**
     * Rasterize an already-binned frame using caller-provided per-tile
     * orderings (one vector per tile, depth order decided by the caller's
     * sorting strategy). Tiles absent from @p orderings fall back to the
     * frame's own (sorted) lists.
     */
    Image renderWithOrdering(
        const BinnedFrame &frame,
        const std::vector<std::vector<TileEntry>> &orderings,
        FrameStats *stats = nullptr) const;

    /**
     * renderWithOrdering into a caller-owned image. When @p arena is
     * non-null the per-chunk raster accumulators (counters + ITU/blend
     * scratch) live there and are reused across frames; with image and
     * arena reused, a warm steady-state render performs zero per-frame
     * heap allocations on the raster path. When @p integrity is non-null
     * and enabled, the blocked kernel cross-checks its CSR bucket bounds
     * and falls back to the scalar reference blend for any tile whose
     * check fails (the fault is detected before any pixel is written).
     */
    void renderInto(Image &image, const BinnedFrame &frame,
                    const std::vector<std::vector<TileEntry>> &orderings,
                    FrameStats *stats = nullptr,
                    FrameArena *arena = nullptr,
                    IntegrityContext *integrity = nullptr) const;

    /** Workload extraction without pixel work (see file comment). */
    FrameWorkload extractWorkload(const GaussianScene &scene,
                                  const Camera &camera) const;

    /** Derive a workload descriptor from an already-binned frame. */
    FrameWorkload workloadFromBinned(const BinnedFrame &frame,
                                     Resolution res) const;

  private:
    PipelineOptions opts_;
};

} // namespace neo

#endif // NEO_GS_PIPELINE_H
