/**
 * @file
 * Scene pruning utilities. The paper's related-work section (§7) positions
 * Neo as orthogonal to memory-footprint work (LightGaussian/Mini-Splatting
 * style pruning): pruning shrinks the scene, Neo shrinks per-frame sorting
 * traffic, and the two compose. This module provides the pruning side so
 * the composition can be measured (bench_ext_pruning).
 *
 * Two importance criteria are implemented:
 *  - opacity pruning: drop Gaussians whose opacity is below a threshold;
 *  - volume-weighted importance: opacity x screen-coverage proxy
 *    (3-sigma volume), which preserves large low-opacity splats that
 *    matter for background coverage.
 */

#ifndef NEO_GS_PRUNE_H
#define NEO_GS_PRUNE_H

#include <cstddef>

#include "gs/gaussian.h"

namespace neo
{

/** Pruning criterion. */
enum class PruneCriterion
{
    Opacity,           //!< importance = opacity
    OpacityVolume,     //!< importance = opacity * mean-scale^2
};

/** Result summary of a pruning pass. */
struct PruneResult
{
    size_t before = 0;
    size_t after = 0;

    double keptFraction() const
    {
        return before ? static_cast<double>(after) / before : 1.0;
    }
};

/** Importance score of one Gaussian under a criterion. */
float pruneImportance(const Gaussian &g, PruneCriterion criterion);

/**
 * Remove every Gaussian with importance below @p threshold, in place.
 * Scene bounds are recomputed.
 */
PruneResult pruneByThreshold(GaussianScene &scene, float threshold,
                             PruneCriterion criterion =
                                 PruneCriterion::Opacity);

/**
 * Keep only the @p keep_fraction most important Gaussians (by criterion),
 * in place; 1.0 is a no-op, 0.0 keeps nothing. Scene bounds are
 * recomputed. Relative order of survivors is preserved so GaussianIds of
 * a *new* scene stay dense.
 */
PruneResult pruneToFraction(GaussianScene &scene, double keep_fraction,
                            PruneCriterion criterion =
                                PruneCriterion::OpacityVolume);

} // namespace neo

#endif // NEO_GS_PRUNE_H
