#include "gs/tiling.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/frame_arena.h"
#include "common/parallel.h"
#include "gs/culling.h"
#include "gs/projection.h"

namespace neo
{

TileRect
tileRectOf(const ProjectedGaussian &pg, const TileGrid &grid)
{
    TileRect r;
    const float radius = pg.radius_px;
    int x0 = static_cast<int>(
        std::floor((pg.mean2d.x - radius) / grid.tile_size));
    int y0 = static_cast<int>(
        std::floor((pg.mean2d.y - radius) / grid.tile_size));
    int x1 = static_cast<int>(
        std::floor((pg.mean2d.x + radius) / grid.tile_size));
    int y1 = static_cast<int>(
        std::floor((pg.mean2d.y + radius) / grid.tile_size));
    r.x0 = std::max(x0, 0);
    r.y0 = std::max(y0, 0);
    r.x1 = std::min(x1, grid.tiles_x - 1);
    r.y1 = std::min(y1, grid.tiles_y - 1);
    return r;
}

double
BinnedFrame::meanTileLength() const
{
    uint64_t total = 0;
    size_t nonempty = 0;
    for (const auto &t : tiles) {
        if (!t.empty()) {
            total += t.size();
            ++nonempty;
        }
    }
    return nonempty ? static_cast<double>(total) / nonempty : 0.0;
}

void
BinnedFrame::rebuildFeatureArrays()
{
    mean2d.resize(features.size());
    radius_px.resize(features.size());
    depth.resize(features.size());
    opacity.resize(features.size());
    color.resize(features.size());
    conic.resize(features.size());
    for (size_t i = 0; i < features.size(); ++i) {
        const ProjectedGaussian &pg = features[i];
        mean2d[i] = pg.mean2d;
        radius_px[i] = pg.radius_px;
        depth[i] = pg.depth;
        opacity[i] = pg.opacity;
        color[i] = pg.color;
        conic[i] = {pg.conic_a, pg.conic_b, pg.conic_c};
    }
}

size_t
BinnedFrame::capacityBytes() const
{
    size_t total = features.capacity() * sizeof(ProjectedGaussian) +
                   feature_of_id.capacity() * sizeof(int32_t) +
                   tiles.capacity() * sizeof(std::vector<TileEntry>) +
                   mean2d.capacity() * sizeof(Vec2) +
                   (color.capacity() + conic.capacity()) * sizeof(Vec3) +
                   (radius_px.capacity() + depth.capacity() +
                    opacity.capacity()) *
                       sizeof(float);
    for (const auto &t : tiles)
        total += t.capacity() * sizeof(TileEntry);
    return total;
}

namespace
{

/** Arena keys of the scatter scratch (see kArenaKeysBinning). */
enum : int
{
    kKeyProjected = kArenaKeysBinning + 0, //!< id-indexed projection slots
    kKeyRects = kArenaKeysBinning + 1,     //!< id-indexed tile rectangles
    kKeyCursors = kArenaKeysBinning + 2,   //!< chunks x tiles counts/cursors
    kKeyFeatureBase = kArenaKeysBinning + 3, //!< per-chunk feature offsets
};

} // namespace

BinnedFrame
binFrame(const GaussianScene &scene, const Camera &camera, int tile_px,
         int threads)
{
    BinnedFrame out;
    FrameArena arena;
    binFrameInto(out, arena, scene, camera, tile_px, threads);
    return out;
}

void
binFrameInto(BinnedFrame &out, FrameArena &arena, const GaussianScene &scene,
             const Camera &camera, int tile_px, int threads)
{
    const int t = resolveThreadCount(threads);
    out.grid = TileGrid(camera.resolution(), tile_px);
    const size_t tile_count = static_cast<size_t>(out.grid.tileCount());
    const size_t n = scene.size();
    clearNested(out.tiles, tile_count);
    out.feature_of_id.assign(n, -1);
    out.instances = 0;

    // Stages 1-2 (culling + projection + SH) are per-Gaussian pure
    // functions; run them in parallel into id-indexed slots.
    auto &projected =
        arena.buffer<std::optional<ProjectedGaussian>>(kKeyProjected);
    projectSceneInto(projected, scene, camera, t);

    // Duplication runs as a two-phase per-chunk scatter. Each chunk owns a
    // contiguous ascending id range, so concatenating the chunks' tile
    // contributions in chunk order reproduces the historical serial
    // ascending-id pass bit for bit.
    const size_t chunks = parallelChunkCount(n, t);
    auto &rects = arena.buffer<TileRect>(kKeyRects);
    rects.resize(n);
    auto &cursors = arena.buffer<uint32_t>(kKeyCursors);
    cursors.assign(chunks * tile_count, 0);
    auto &feature_base = arena.buffer<uint32_t>(kKeyFeatureBase);
    feature_base.assign(chunks + 1, 0);

    // Phase 1: each chunk computes its Gaussians' tile rectangles and
    // counts its per-tile instances and visible features. (If this runs
    // nested inside another parallel region the whole range lands in
    // chunk 0; the other rows stay zero, which the prefix pass handles.)
    parallelFor(n, t, [&](size_t begin, size_t end, size_t chunk) {
        uint32_t *counts = cursors.data() + chunk * tile_count;
        uint32_t features = 0;
        for (size_t id = begin; id < end; ++id) {
            if (!projected[id])
                continue;
            const TileRect rect = tileRectOf(projected[id].value(), out.grid);
            rects[id] = rect;
            if (rect.empty())
                continue;
            ++features;
            for (int ty = rect.y0; ty <= rect.y1; ++ty)
                for (int tx = rect.x0; tx <= rect.x1; ++tx)
                    ++counts[out.grid.tileIndex(tx, ty)];
        }
        feature_base[chunk + 1] = features;
    });

    // Prefix pass: turn the per-chunk counts into per-chunk write cursors
    // (chunk-order concatenation within each tile) and size every output
    // structure exactly.
    uint64_t instances = 0;
    for (size_t tile = 0; tile < tile_count; ++tile) {
        uint32_t offset = 0;
        for (size_t c = 0; c < chunks; ++c) {
            const uint32_t count = cursors[c * tile_count + tile];
            cursors[c * tile_count + tile] = offset;
            offset += count;
        }
        out.tiles[tile].resize(offset);
        instances += offset;
    }
    out.instances = instances;
    for (size_t c = 0; c < chunks; ++c)
        feature_base[c + 1] += feature_base[c];
    const size_t visible = feature_base[chunks];
    out.features.resize(visible);
    out.mean2d.resize(visible);
    out.radius_px.resize(visible);
    out.depth.resize(visible);
    out.opacity.resize(visible);
    out.color.resize(visible);
    out.conic.resize(visible);

    // Phase 2: scatter. Chunks write disjoint feature slots and disjoint
    // index ranges of each tile list, so the parallel writes are race-free
    // and land exactly where the serial pass would have put them.
    parallelFor(n, t, [&](size_t begin, size_t end, size_t chunk) {
        uint32_t *cursor = cursors.data() + chunk * tile_count;
        uint32_t slot = feature_base[chunk];
        for (size_t id = begin; id < end; ++id) {
            if (!projected[id])
                continue;
            const TileRect &rect = rects[id];
            if (rect.empty())
                continue;
            const ProjectedGaussian &pg = projected[id].value();
            out.feature_of_id[id] = static_cast<int32_t>(slot);
            out.features[slot] = pg;
            out.mean2d[slot] = pg.mean2d;
            out.radius_px[slot] = pg.radius_px;
            out.depth[slot] = pg.depth;
            out.opacity[slot] = pg.opacity;
            out.color[slot] = pg.color;
            out.conic[slot] = {pg.conic_a, pg.conic_b, pg.conic_c};
            ++slot;
            for (int ty = rect.y0; ty <= rect.y1; ++ty)
                for (int tx = rect.x0; tx <= rect.x1; ++tx) {
                    const int tile = out.grid.tileIndex(tx, ty);
                    out.tiles[tile][cursor[tile]++] =
                        TileEntry{static_cast<GaussianId>(id), pg.depth,
                                  true};
                }
        }
    });
}

} // namespace neo
