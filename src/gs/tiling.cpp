#include "gs/tiling.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "gs/culling.h"
#include "gs/projection.h"

namespace neo
{

TileRect
tileRectOf(const ProjectedGaussian &pg, const TileGrid &grid)
{
    TileRect r;
    const float radius = pg.radius_px;
    int x0 = static_cast<int>(
        std::floor((pg.mean2d.x - radius) / grid.tile_size));
    int y0 = static_cast<int>(
        std::floor((pg.mean2d.y - radius) / grid.tile_size));
    int x1 = static_cast<int>(
        std::floor((pg.mean2d.x + radius) / grid.tile_size));
    int y1 = static_cast<int>(
        std::floor((pg.mean2d.y + radius) / grid.tile_size));
    r.x0 = std::max(x0, 0);
    r.y0 = std::max(y0, 0);
    r.x1 = std::min(x1, grid.tiles_x - 1);
    r.y1 = std::min(y1, grid.tiles_y - 1);
    return r;
}

double
BinnedFrame::meanTileLength() const
{
    uint64_t total = 0;
    size_t nonempty = 0;
    for (const auto &t : tiles) {
        if (!t.empty()) {
            total += t.size();
            ++nonempty;
        }
    }
    return nonempty ? static_cast<double>(total) / nonempty : 0.0;
}

void
BinnedFrame::rebuildFeatureArrays()
{
    mean2d.resize(features.size());
    radius_px.resize(features.size());
    depth.resize(features.size());
    for (size_t i = 0; i < features.size(); ++i) {
        mean2d[i] = features[i].mean2d;
        radius_px[i] = features[i].radius_px;
        depth[i] = features[i].depth;
    }
}

BinnedFrame
binFrame(const GaussianScene &scene, const Camera &camera, int tile_px,
         int threads)
{
    BinnedFrame out;
    out.grid = TileGrid(camera.resolution(), tile_px);
    out.tiles.resize(out.grid.tileCount());
    out.feature_of_id.assign(scene.size(), -1);
    out.features.reserve(scene.size() / 2);

    // Stages 1-2 (culling + projection + SH) are per-Gaussian pure
    // functions; run them in parallel into id-indexed slots.
    auto projected = projectScene(scene, camera, threads);

    // Duplication stays a serial scatter in ascending id order, so the
    // feature table, tile lists and instance count come out exactly as the
    // historical single-thread loop produced them.
    for (GaussianId id = 0; id < scene.size(); ++id) {
        if (!projected[id])
            continue;
        const ProjectedGaussian &pg = *projected[id];
        TileRect rect = tileRectOf(pg, out.grid);
        if (rect.empty())
            continue;

        out.feature_of_id[id] = static_cast<int32_t>(out.features.size());
        out.features.push_back(pg);

        for (int ty = rect.y0; ty <= rect.y1; ++ty) {
            for (int tx = rect.x0; tx <= rect.x1; ++tx) {
                out.tiles[out.grid.tileIndex(tx, ty)].push_back(
                    {id, pg.depth, true});
                ++out.instances;
            }
        }
    }
    out.rebuildFeatureArrays();
    return out;
}

} // namespace neo
