#include "gs/tiling.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "gs/culling.h"
#include "gs/projection.h"

namespace neo
{

TileRect
tileRectOf(const ProjectedGaussian &pg, const TileGrid &grid)
{
    TileRect r;
    const float radius = pg.radius_px;
    int x0 = static_cast<int>(
        std::floor((pg.mean2d.x - radius) / grid.tile_size));
    int y0 = static_cast<int>(
        std::floor((pg.mean2d.y - radius) / grid.tile_size));
    int x1 = static_cast<int>(
        std::floor((pg.mean2d.x + radius) / grid.tile_size));
    int y1 = static_cast<int>(
        std::floor((pg.mean2d.y + radius) / grid.tile_size));
    r.x0 = std::max(x0, 0);
    r.y0 = std::max(y0, 0);
    r.x1 = std::min(x1, grid.tiles_x - 1);
    r.y1 = std::min(y1, grid.tiles_y - 1);
    return r;
}

double
BinnedFrame::meanTileLength() const
{
    uint64_t total = 0;
    size_t nonempty = 0;
    for (const auto &t : tiles) {
        if (!t.empty()) {
            total += t.size();
            ++nonempty;
        }
    }
    return nonempty ? static_cast<double>(total) / nonempty : 0.0;
}

BinnedFrame
binFrame(const GaussianScene &scene, const Camera &camera, int tile_px)
{
    BinnedFrame out;
    out.grid = TileGrid(camera.resolution(), tile_px);
    out.tiles.resize(out.grid.tileCount());
    out.feature_of_id.assign(scene.size(), -1);
    out.features.reserve(scene.size() / 2);

    for (GaussianId id = 0; id < scene.size(); ++id) {
        const Gaussian &g = scene[id];
        if (!inFrustum(g, camera))
            continue;
        auto pg = projectGaussian(g, id, camera);
        if (!pg)
            continue;
        TileRect rect = tileRectOf(*pg, out.grid);
        if (rect.empty())
            continue;

        out.feature_of_id[id] = static_cast<int32_t>(out.features.size());
        out.features.push_back(*pg);

        for (int ty = rect.y0; ty <= rect.y1; ++ty) {
            for (int tx = rect.x0; tx <= rect.x1; ++tx) {
                out.tiles[out.grid.tileIndex(tx, ty)].push_back(
                    {id, pg->depth, true});
                ++out.instances;
            }
        }
    }
    return out;
}

} // namespace neo
