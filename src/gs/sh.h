/**
 * @file
 * Real spherical-harmonics basis evaluation (degree 0..2) used for the
 * view-dependent color of each Gaussian, matching the SH convention of the
 * 3DGS reference implementation.
 */

#ifndef NEO_GS_SH_H
#define NEO_GS_SH_H

#include "common/math.h"
#include "gs/gaussian.h"

namespace neo
{

/**
 * Evaluate the 9 degree<=2 real SH basis functions for unit direction
 * @p dir into @p basis (size kShCoeffsPerChannel).
 */
void shBasis(const Vec3 &dir, float basis[kShCoeffsPerChannel]);

/**
 * Evaluate a Gaussian's SH color for viewing direction @p dir.
 * The DC convention matches 3DGS: color = 0.5 + SH dot basis, clamped at 0.
 */
Vec3 shColor(const Gaussian &g, const Vec3 &dir);

/**
 * Write SH coefficients into @p g such that its color is @p base with a
 * view-dependent tint of relative strength @p directional (0 = flat color).
 * Directional coefficients are taken from @p dir_seed components.
 */
void setShFromColor(Gaussian &g, const Vec3 &base, float directional = 0.0f,
                    const Vec3 &dir_seed = {0.3f, -0.2f, 0.1f});

} // namespace neo

#endif // NEO_GS_SH_H
