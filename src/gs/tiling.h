/**
 * @file
 * Tile binning (the "duplication" step): the image plane is subdivided into
 * square tiles and every projected Gaussian is replicated into each tile
 * its screen-space footprint touches. The per-tile (id, depth) lists are
 * the input of the sorting stage; persistent per-tile tables in core/ are
 * derived from the same structures.
 */

#ifndef NEO_GS_TILING_H
#define NEO_GS_TILING_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/digest.h"
#include "common/faultinject.h"
#include "gs/camera.h"
#include "gs/gaussian.h"

namespace neo
{

/** One entry of a per-tile Gaussian list / table. */
struct TileEntry
{
    GaussianId id = 0;
    float depth = 0.0f;
    /** Cleared by rasterization when the Gaussian leaves the tile. */
    bool valid = true;

    /**
     * Integrity digest over the semantic fields only — the struct has
     * three padding bytes after `valid`, so hashing raw object bytes
     * would fold indeterminate memory into the digest.
     */
    void digestInto(Digest64 &d) const
    {
        d.u64v(static_cast<uint64_t>(id) |
               (static_cast<uint64_t>(std::bit_cast<uint32_t>(depth))
                << 32));
        d.flag(valid);
    }
};

/**
 * Bit flips are injected into the id/depth fields only: the padding
 * bytes are invisible to the field-aware digest, and a multi-bit bool
 * is undefined behavior — neither is a meaningful fault-model target.
 */
template <>
struct faultinject::SemanticBytes<TileEntry>
{
    static constexpr size_t value = 8;
};

// The projection/feature SoA arrays are fenced as raw bytes: Vec2/Vec3
// are padding-free float aggregates, so their object bytes are a
// deterministic function of their value (what the fence compares) even
// though the unique-object-representations trait rejects floats.
static_assert(sizeof(Vec2) == 2 * sizeof(float) &&
                  sizeof(Vec3) == 3 * sizeof(float),
              "feature-array fences assume padding-free vectors");

template <>
struct DigestAsRawBytes<Vec2> : std::true_type
{
};

template <>
struct DigestAsRawBytes<Vec3> : std::true_type
{
};

/** Depth-ascending comparison used everywhere a tile list is sorted. */
inline bool
entryDepthLess(const TileEntry &a, const TileEntry &b)
{
    if (a.depth != b.depth)
        return a.depth < b.depth;
    return a.id < b.id; // deterministic tie-break
}

/** Tile decomposition of a render target. */
struct TileGrid
{
    int tile_size = 16;
    int tiles_x = 0;
    int tiles_y = 0;

    TileGrid() = default;
    TileGrid(Resolution res, int tile_px)
        : tile_size(tile_px),
          tiles_x((res.width + tile_px - 1) / tile_px),
          tiles_y((res.height + tile_px - 1) / tile_px)
    {
    }

    int tileCount() const { return tiles_x * tiles_y; }
    int tileIndex(int tx, int ty) const { return ty * tiles_x + tx; }

    /** Pixel origin (top-left) of a tile. */
    Vec2 tileOrigin(int tile) const
    {
        int tx = tile % tiles_x;
        int ty = tile / tiles_x;
        return {static_cast<float>(tx * tile_size),
                static_cast<float>(ty * tile_size)};
    }
};

/** Inclusive tile-coordinate rectangle covered by a projected Gaussian. */
struct TileRect
{
    int x0 = 0, y0 = 0, x1 = -1, y1 = -1; // empty when x1 < x0

    bool empty() const { return x1 < x0 || y1 < y0; }
    long count() const
    {
        return empty() ? 0 : static_cast<long>(x1 - x0 + 1) * (y1 - y0 + 1);
    }
};

/** Compute the clamped tile rectangle touched by @p pg. */
TileRect tileRectOf(const ProjectedGaussian &pg, const TileGrid &grid);

/** Result of binning one frame. */
struct BinnedFrame
{
    TileGrid grid;
    /** Projected features of all visible Gaussians this frame. */
    FeatureTable features;
    /** Map GaussianId -> index into features (-1 when not visible). */
    std::vector<int32_t> feature_of_id;
    /** Per-tile (id, depth) lists, unsorted. */
    std::vector<std::vector<TileEntry>> tiles;
    /** Total duplicated instances (= sum of tile list lengths). */
    uint64_t instances = 0;

    // SoA mirrors of the hot feature fields, indexed by feature slot
    // (same index as `features`). The intersection-test, depth-refresh and
    // blend loops stream these small contiguous arrays instead of pulling
    // whole ProjectedGaussian records through the cache. Kept in sync by
    // binFrame(); call rebuildFeatureArrays() after mutating `features`.
    std::vector<Vec2> mean2d;     //!< screen-space centers
    std::vector<float> radius_px; //!< 3-sigma screen radii
    std::vector<float> depth;     //!< camera-space depths
    std::vector<float> opacity;   //!< blend opacities
    std::vector<Vec3> color;      //!< view-dependent RGB from SH
    std::vector<Vec3> conic;      //!< inverse-covariance (a, b, c)

    const ProjectedGaussian &featureOf(GaussianId id) const
    {
        return features[feature_of_id[id]];
    }

    /** Feature slot of @p id; only valid when isVisible(id). */
    int32_t slotOf(GaussianId id) const { return feature_of_id[id]; }

    bool isVisible(GaussianId id) const
    {
        return id < feature_of_id.size() && feature_of_id[id] >= 0;
    }

    /** True when the SoA arrays match `features` (hot paths require it). */
    bool hasFeatureArrays() const
    {
        return mean2d.size() == features.size() &&
               radius_px.size() == features.size() &&
               depth.size() == features.size() &&
               opacity.size() == features.size() &&
               color.size() == features.size() &&
               conic.size() == features.size();
    }

    /** Regenerate the SoA arrays from `features`. */
    void rebuildFeatureArrays();

    /** Mean tile-list length over non-empty tiles. */
    double meanTileLength() const;

    /**
     * Bytes of vector capacity currently held (outer containers plus
     * per-tile lists). Constant across a warm steady-state frame loop;
     * the arena-reuse test pins that down.
     */
    size_t capacityBytes() const;
};

class FrameArena;

/**
 * Run culling + feature extraction + duplication for one frame. Culling,
 * projection and SH evaluation run per-Gaussian in parallel; the
 * duplication scatter runs as per-chunk local binning (each worker counts
 * and then scatters its contiguous id range) with a deterministic
 * per-tile concatenation in chunk order, so every tile list comes out in
 * ascending id order — bit-identical to the historical serial pass for
 * any thread count.
 *
 * @param scene the scene
 * @param camera viewing camera
 * @param tile_px tile edge length in pixels
 * @param threads requested thread count (resolveThreadCount semantics:
 *        0 defers to NEO_THREADS, default serial)
 */
BinnedFrame binFrame(const GaussianScene &scene, const Camera &camera,
                     int tile_px, int threads = 0);

/**
 * binFrame into caller-owned storage: @p out and the scatter scratch in
 * @p arena are cleared and refilled with capacity retained, so a warm
 * steady-state loop re-bins without any per-frame heap allocation.
 * Results are bit-identical to binFrame for any thread count.
 */
void binFrameInto(BinnedFrame &out, FrameArena &arena,
                  const GaussianScene &scene, const Camera &camera,
                  int tile_px, int threads = 0);

} // namespace neo

#endif // NEO_GS_TILING_H
