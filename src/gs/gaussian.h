/**
 * @file
 * Scene representation for 3D Gaussian Splatting: the learnable per-Gaussian
 * parameters of Kerbl et al. (position, anisotropic scale + rotation,
 * opacity, spherical-harmonics color) and the projected 2D form produced by
 * the feature-extraction stage.
 */

#ifndef NEO_GS_GAUSSIAN_H
#define NEO_GS_GAUSSIAN_H

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/math.h"

namespace neo
{

/** Identifier of a Gaussian within its scene (index into GaussianScene). */
using GaussianId = uint32_t;

/** Number of spherical-harmonics coefficients per color channel (degree 2). */
constexpr int kShCoeffsPerChannel = 9;

/**
 * One 3D Gaussian primitive. The covariance is parameterized as
 * Sigma = R S S^T R^T with per-axis scales S and unit quaternion R,
 * exactly as in the original 3DGS formulation.
 */
struct Gaussian
{
    Vec3 position;
    Vec3 scale{0.01f, 0.01f, 0.01f};
    Quat rotation;
    float opacity = 0.5f;
    /** SH color coefficients, kShCoeffsPerChannel per RGB channel. */
    float sh[3][kShCoeffsPerChannel] = {};

    /** World-space 3D covariance of this Gaussian. */
    Mat3 covariance() const
    {
        return covarianceFromScaleRotation(scale, rotation);
    }
};

/**
 * A scene is a flat array of Gaussians; GaussianId indexes into it.
 * Scenes also carry a bounding radius used by trajectory generation.
 */
struct GaussianScene
{
    std::vector<Gaussian> gaussians;
    Vec3 center;
    float bounding_radius = 1.0f;
    std::string name = "unnamed";

    size_t size() const { return gaussians.size(); }
    bool empty() const { return gaussians.empty(); }
    const Gaussian &operator[](size_t i) const { return gaussians[i]; }
    Gaussian &operator[](size_t i) { return gaussians[i]; }
};

/**
 * Exponent of the Gaussian falloff at pixel offset (dx, dy): the negated
 * conic quadratic form for inverse-covariance coefficients (a, b, c).
 * Every blend path (ProjectedGaussian::falloff, the rasterizer's scalar
 * reference and its subtile-blocked kernel) MUST evaluate this one
 * function — the operation order is part of the bit-equality contract
 * between them.
 */
inline float
conicPower(float a, float b, float c, float dx, float dy)
{
    return -0.5f * (a * dx * dx + c * dy * dy) - b * dx * dy;
}

/**
 * A Gaussian after frustum culling and feature extraction: projected to the
 * image plane with view-dependent color resolved. This is the "feature
 * table" record the rasterizer consumes.
 */
struct ProjectedGaussian
{
    GaussianId id = 0;
    Vec2 mean2d;          //!< pixel-space center
    /** Inverse 2D covariance (conic) coefficients: a*dx^2+2b*dx*dy+c*dy^2. */
    float conic_a = 1.0f;
    float conic_b = 0.0f;
    float conic_c = 1.0f;
    float radius_px = 0.0f; //!< 3-sigma screen-space extent
    float depth = 0.0f;     //!< camera-space z used for sorting
    Vec3 color;             //!< view-dependent RGB from SH
    float opacity = 0.0f;

    /** conicPower of this Gaussian's coefficients (see above). */
    float
    falloffPower(float dx, float dy) const
    {
        return conicPower(conic_a, conic_b, conic_c, dx, dy);
    }

    /** Unnormalized Gaussian falloff at pixel offset (dx, dy) from center. */
    float
    falloff(float dx, float dy) const
    {
        float power = falloffPower(dx, dy);
        return power > 0.0f ? 0.0f : std::exp(power);
    }
};

/** Feature table: all projected Gaussians of a frame, indexed by slot. */
using FeatureTable = std::vector<ProjectedGaussian>;

/**
 * Recompute @p scene center and bounding radius from its Gaussians
 * (positions plus 3-sigma extents).
 */
void recomputeBounds(GaussianScene &scene);

} // namespace neo

#endif // NEO_GS_GAUSSIAN_H
