#include "gs/projection.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/parallel.h"
#include "gs/culling.h"
#include "gs/sh.h"

namespace neo
{

Vec3
ewaCovariance2d(const Mat3 &cov3d_cam, const Vec3 &cam, float focal_x,
                float focal_y)
{
    // Jacobian of the perspective projection at the Gaussian center.
    const float inv_z = 1.0f / cam.z;
    const float inv_z2 = inv_z * inv_z;
    Mat3 j{};
    j(0, 0) = focal_x * inv_z;
    j(0, 2) = -focal_x * cam.x * inv_z2;
    j(1, 1) = focal_y * inv_z;
    j(1, 2) = -focal_y * cam.y * inv_z2;
    // Third row zero: we only need the top-left 2x2 of J Sigma J^T.

    Mat3 t = j * cov3d_cam * j.transposed();
    return {t(0, 0) + kCovarianceDilation, t(0, 1),
            t(1, 1) + kCovarianceDilation};
}

std::optional<ProjectedGaussian>
projectGaussian(const Gaussian &g, GaussianId id, const Camera &camera)
{
    return projectGaussian(g, id, camera,
                           camera.worldToCamera().rotationBlock());
}

std::optional<ProjectedGaussian>
projectGaussian(const Gaussian &g, GaussianId id, const Camera &camera,
                const Mat3 &cam_rotation)
{
    Vec3 cam = camera.toCameraSpace(g.position);
    if (cam.z <= kNearPlane)
        return std::nullopt;

    // Rotate the world covariance into camera space.
    const Mat3 &w = cam_rotation;
    Mat3 cov_cam = w * g.covariance() * w.transposed();
    Vec3 cov2d =
        ewaCovariance2d(cov_cam, cam, camera.focalX(), camera.focalY());

    const float a = cov2d.x, b = cov2d.y, c = cov2d.z;
    const float det = a * c - b * b;
    if (det <= 0.0f)
        return std::nullopt;

    ProjectedGaussian out;
    out.id = id;
    out.mean2d = camera.toScreen(cam);
    const float inv_det = 1.0f / det;
    out.conic_a = c * inv_det;
    out.conic_b = -b * inv_det;
    out.conic_c = a * inv_det;
    out.depth = cam.z;
    out.opacity = g.opacity;

    auto [eig_max, eig_min] = symmetricEigenvalues2x2(a, b, c);
    (void)eig_min;
    out.radius_px = std::ceil(3.0f * std::sqrt(std::max(eig_max, 0.0f)));
    if (out.radius_px < 1.0f)
        return std::nullopt;

    out.color = shColor(g, camera.viewDirection(g.position));
    return out;
}

std::vector<std::optional<ProjectedGaussian>>
projectScene(const GaussianScene &scene, const Camera &camera, int threads)
{
    std::vector<std::optional<ProjectedGaussian>> out;
    projectSceneInto(out, scene, camera, threads);
    return out;
}

void
projectSceneInto(std::vector<std::optional<ProjectedGaussian>> &out,
                 const GaussianScene &scene, const Camera &camera,
                 int threads)
{
    out.assign(scene.size(), std::nullopt);
    const Mat3 cam_rotation = camera.worldToCamera().rotationBlock();
    parallelFor(scene.size(), resolveThreadCount(threads),
                [&](size_t begin, size_t end, size_t) {
                    for (size_t i = begin; i < end; ++i) {
                        const Gaussian &g = scene[i];
                        if (!inFrustum(g, camera))
                            continue;
                        out[i] = projectGaussian(
                            g, static_cast<GaussianId>(i), camera,
                            cam_rotation);
                    }
                });
}

} // namespace neo
