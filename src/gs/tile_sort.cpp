#include "gs/tile_sort.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace neo
{

namespace
{

/**
 * Map float bits to a uint32 whose unsigned order equals the float's
 * numeric order: negative values flip every bit (reversing their order),
 * non-negative values flip only the sign bit (lifting them above all
 * negatives).
 */
inline uint32_t
flipDepth(uint32_t bits)
{
    return bits ^
           (static_cast<uint32_t>(static_cast<int32_t>(bits) >> 31) |
            0x80000000u);
}

/** Inverse of flipDepth (the sign information lives in the top bit). */
inline uint32_t
unflipDepth(uint32_t flipped)
{
    return flipped ^
           (static_cast<uint32_t>(static_cast<int32_t>(~flipped) >> 31) |
            0x80000000u);
}

} // namespace

void
keySortTable(std::vector<TileEntry> &table, TileSortScratch &scratch)
{
    const size_t n = table.size();
    if (n <= 1)
        return;

    scratch.keys.resize(n);
    uint64_t *k = scratch.keys.data();
    const TileEntry *e = table.data();
    // Pack {flipped depth : 32 | id : 32}; a single u64 compare is then
    // exactly entryDepthLess. The irregular accumulator arms the
    // comparator fallback: -0.0f depths would order below the +0.0f ties
    // the comparator considers equal, and a cleared valid bit has no key
    // bits to ride in.
    bool irregular = false;
    for (size_t i = 0; i < n; ++i) {
        const uint32_t bits = std::bit_cast<uint32_t>(e[i].depth);
        irregular |= (bits == 0x80000000u) | !e[i].valid;
        k[i] = (static_cast<uint64_t>(flipDepth(bits)) << 32) |
               static_cast<uint64_t>(e[i].id);
    }
    if (irregular) {
        std::sort(table.begin(), table.end(), entryDepthLess);
        return;
    }

    std::sort(k, k + n);

    TileEntry *out = table.data();
    for (size_t i = 0; i < n; ++i) {
        out[i].id = static_cast<uint32_t>(k[i]);
        out[i].depth = std::bit_cast<float>(
            unflipDepth(static_cast<uint32_t>(k[i] >> 32)));
        out[i].valid = true;
    }
}

void
sortTablesBatched(std::vector<std::vector<TileEntry>> &tables, int threads,
                  BatchSortScratch &scratch, size_t grain)
{
    const size_t n = tables.size();
    if (n == 0)
        return;
    buildWeightedBatchesInto(scratch.batches, n, grain,
                             [&](size_t t) { return tables[t].size(); });
    const size_t chunks =
        parallelChunkCount(scratch.batches.size(), threads);
    if (scratch.per_chunk.size() < chunks)
        scratch.per_chunk.resize(chunks);
    parallelForBatched(scratch.batches, threads,
                       [&](size_t begin, size_t end, size_t chunk) {
                           TileSortScratch &s = scratch.per_chunk[chunk];
                           for (size_t t = begin; t < end; ++t)
                               keySortTable(tables[t], s);
                       });
}

} // namespace neo
