#include "gs/culling.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/parallel.h"
#include "gs/projection.h"

namespace neo
{

bool
inFrustum(const Gaussian &g, const Camera &camera, float margin)
{
    Vec3 cam = camera.toCameraSpace(g.position);
    float extent = 3.0f * std::max({g.scale.x, g.scale.y, g.scale.z});
    if (cam.z + extent <= kNearPlane)
        return false;

    // Compare against the view pyramid half-angles with the sphere extent
    // projected onto the image plane.
    float z = std::max(cam.z, kNearPlane);
    float half_w = 0.5f * camera.width() / camera.focalX() * z;
    float half_h = 0.5f * camera.height() / camera.focalY() * z;
    half_w = half_w * margin + extent;
    half_h = half_h * margin + extent;
    return std::fabs(cam.x) <= half_w && std::fabs(cam.y) <= half_h;
}

CullResult
cullScene(const GaussianScene &scene, const Camera &camera, float margin,
          int threads)
{
    CullResult r;
    r.total = scene.size();

    auto parts = parallelForAccumulate<std::vector<GaussianId>>(
        scene.size(), resolveThreadCount(threads),
        [&](size_t begin, size_t end, std::vector<GaussianId> &part) {
            part.reserve(end - begin);
            for (size_t id = begin; id < end; ++id) {
                if (inFrustum(scene[id], camera, margin))
                    part.push_back(static_cast<GaussianId>(id));
            }
        });

    r.visible.reserve(scene.size());
    for (const auto &part : parts)
        r.visible.insert(r.visible.end(), part.begin(), part.end());
    return r;
}

} // namespace neo
