#include "gs/culling.h"

#include <algorithm>
#include <cmath>

#include "gs/projection.h"

namespace neo
{

bool
inFrustum(const Gaussian &g, const Camera &camera, float margin)
{
    Vec3 cam = camera.toCameraSpace(g.position);
    float extent = 3.0f * std::max({g.scale.x, g.scale.y, g.scale.z});
    if (cam.z + extent <= kNearPlane)
        return false;

    // Compare against the view pyramid half-angles with the sphere extent
    // projected onto the image plane.
    float z = std::max(cam.z, kNearPlane);
    float half_w = 0.5f * camera.width() / camera.focalX() * z;
    float half_h = 0.5f * camera.height() / camera.focalY() * z;
    half_w = half_w * margin + extent;
    half_h = half_h * margin + extent;
    return std::fabs(cam.x) <= half_w && std::fabs(cam.y) <= half_h;
}

CullResult
cullScene(const GaussianScene &scene, const Camera &camera, float margin)
{
    CullResult r;
    r.total = scene.size();
    r.visible.reserve(scene.size());
    for (GaussianId id = 0; id < scene.size(); ++id) {
        if (inFrustum(scene[id], camera, margin))
            r.visible.push_back(id);
    }
    return r;
}

} // namespace neo
