#include "gs/pipeline.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace neo
{

uint64_t
FrameWorkload::nonEmptyTiles() const
{
    uint64_t n = 0;
    for (uint32_t len : tile_lengths)
        if (len > 0)
            ++n;
    return n;
}

double
FrameWorkload::meanTileLength() const
{
    uint64_t tiles = nonEmptyTiles();
    return tiles ? static_cast<double>(instances) / tiles : 0.0;
}

BinnedFrame
Renderer::prepare(const GaussianScene &scene, const Camera &camera) const
{
    BinnedFrame frame = binFrame(scene, camera, opts_.tile_px);
    for (auto &tile : frame.tiles)
        std::sort(tile.begin(), tile.end(), entryDepthLess);
    return frame;
}

Image
Renderer::render(const GaussianScene &scene, const Camera &camera,
                 FrameStats *stats) const
{
    BinnedFrame frame = prepare(scene, camera);
    return renderWithOrdering(frame, {}, stats ? stats : nullptr);
}

Image
Renderer::renderWithOrdering(
    const BinnedFrame &frame,
    const std::vector<std::vector<TileEntry>> &orderings,
    FrameStats *stats) const
{
    const TileGrid &grid = frame.grid;
    Image image(grid.tiles_x * grid.tile_size, grid.tiles_y * grid.tile_size);

    FrameStats local;
    local.scene_gaussians = frame.feature_of_id.size();
    local.visible_gaussians = frame.features.size();
    local.instances = frame.instances;
    local.mean_tile_length = frame.meanTileLength();

    for (int tile = 0; tile < grid.tileCount(); ++tile) {
        const std::vector<TileEntry> &order =
            (tile < static_cast<int>(orderings.size()) &&
             !orderings[tile].empty())
                ? orderings[tile]
                : frame.tiles[tile];
        if (order.empty())
            continue;
        local.raster +=
            rasterizeTile(order, frame, tile, opts_.raster, &image);
    }
    if (stats)
        *stats = local;
    return image;
}

FrameWorkload
Renderer::extractWorkload(const GaussianScene &scene,
                          const Camera &camera) const
{
    BinnedFrame frame = prepare(scene, camera);
    return workloadFromBinned(frame, camera.resolution());
}

FrameWorkload
Renderer::workloadFromBinned(const BinnedFrame &frame, Resolution res) const
{
    FrameWorkload w;
    w.res = res;
    w.tile_size = frame.grid.tile_size;
    w.scene_gaussians = frame.feature_of_id.size();
    w.visible_gaussians = frame.features.size();
    w.instances = frame.instances;
    w.tile_lengths.reserve(frame.tiles.size());
    const int subtiles_1d = frame.grid.tile_size / opts_.raster.subtile_size;
    for (int tile = 0; tile < frame.grid.tileCount(); ++tile) {
        const auto &entries = frame.tiles[tile];
        w.tile_lengths.push_back(static_cast<uint32_t>(entries.size()));
        if (entries.empty())
            continue;
        w.blend_ops +=
            estimateTileBlendOps(entries, frame, tile, opts_.raster);
        w.intersection_tests += entries.size() *
                                static_cast<uint64_t>(subtiles_1d) *
                                subtiles_1d;
    }
    return w;
}

} // namespace neo
