#include "gs/pipeline.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/frame_arena.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "gs/tile_sort.h"

namespace neo
{

namespace
{

/** Per-chunk rasterization working set (see Renderer::renderInto). */
struct RasterAccum
{
    RasterStats stats;
    RasterScratch scratch;

    /** Nested heap capacity, surfaced to FrameArena::retainedBytes. */
    size_t capacityBytes() const { return scratch.capacityBytes(); }
};

/** Arena keys of the raster accumulators and the batched tile-sort
 *  scratch (see kArenaKeysRaster). */
enum : int
{
    kKeyRasterAccums = kArenaKeysRaster + 0,
    kKeySortScratch = kArenaKeysRaster + 1,
};

} // namespace

uint64_t
FrameWorkload::nonEmptyTiles() const
{
    uint64_t n = 0;
    for (uint32_t len : tile_lengths)
        if (len > 0)
            ++n;
    return n;
}

double
FrameWorkload::meanTileLength() const
{
    uint64_t tiles = nonEmptyTiles();
    return tiles ? static_cast<double>(instances) / tiles : 0.0;
}

BinnedFrame
Renderer::prepare(const GaussianScene &scene, const Camera &camera) const
{
    BinnedFrame frame;
    FrameArena arena;
    prepareInto(frame, arena, scene, camera);
    return frame;
}

void
Renderer::prepareInto(BinnedFrame &frame, FrameArena &arena,
                      const GaussianScene &scene, const Camera &camera) const
{
    const int threads = resolveThreadCount(opts_.threads);
    binFrameInto(frame, arena, scene, camera, opts_.tile_px, threads);
    // Each tile's ordering is independent of every other tile's; tiny
    // tiles fuse into ~256-entry batches so the pool dispatches per
    // batch, and each batch sorts through the key kernel — bit-identical
    // to per-tile std::sort(entryDepthLess) at any thread count.
    auto &sort_scratch = arena.buffer<BatchSortScratch>(kKeySortScratch);
    if (sort_scratch.empty())
        sort_scratch.resize(1);
    sortTablesBatched(frame.tiles, threads, sort_scratch.front());
}

Image
Renderer::render(const GaussianScene &scene, const Camera &camera,
                 FrameStats *stats) const
{
    BinnedFrame frame = prepare(scene, camera);
    const IntegrityMode mode = resolveIntegrityMode(opts_.integrity);
    if (mode == IntegrityMode::Off)
        return renderWithOrdering(frame, {}, stats ? stats : nullptr);

    // One-shot integrity path: fence the binned tile lists between
    // prepare and rasterization, and let the blocked kernel cross-check
    // its CSR bounds. (The serving loop in NeoRenderer carries a
    // persistent context instead.)
    IntegrityContext ctx;
    ctx.configure(mode);
    ctx.beginFrame(0);
    ctx.sealTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                  frame.tiles);
    faultinject::corruptTiles(kIntegrityBinTiles, frame.tiles);
    ctx.verifyTiles(IntegrityStage::Binning, kIntegrityBinTiles,
                    frame.tiles);
    Image image;
    FrameStats local;
    renderInto(image, frame, {}, &local, nullptr, &ctx);
    ctx.exportStats(local.integrity);
    if (stats)
        *stats = local;
    return image;
}

Image
Renderer::renderWithOrdering(
    const BinnedFrame &frame,
    const std::vector<std::vector<TileEntry>> &orderings,
    FrameStats *stats) const
{
    Image image;
    renderInto(image, frame, orderings, stats, nullptr);
    return image;
}

void
Renderer::renderInto(Image &image, const BinnedFrame &frame,
                     const std::vector<std::vector<TileEntry>> &orderings,
                     FrameStats *stats, FrameArena *arena,
                     IntegrityContext *integrity) const
{
    if (integrity && !integrity->enabled())
        integrity = nullptr;
    const TileGrid &grid = frame.grid;
    image.reset(grid.tiles_x * grid.tile_size,
                grid.tiles_y * grid.tile_size);

    FrameStats local;
    local.scene_gaussians = frame.feature_of_id.size();
    local.visible_gaussians = frame.features.size();
    local.instances = frame.instances;
    local.mean_tile_length = frame.meanTileLength();

    // Tiles own disjoint pixel rectangles of the framebuffer, so parallel
    // rasterization is race-free; counters accumulate per chunk and merge
    // in fixed chunk order below to stay deterministic.
    const int threads = resolveThreadCount(opts_.threads);
    const size_t tile_count = static_cast<size_t>(grid.tileCount());
    auto rasterChunk = [&](size_t begin, size_t end, RasterAccum &acc) {
        for (size_t t = begin; t < end; ++t) {
            const std::vector<TileEntry> &order =
                (t < orderings.size() && !orderings[t].empty())
                    ? orderings[t]
                    : frame.tiles[t];
            if (order.empty())
                continue;
            acc.stats +=
                rasterizeTile(order, frame, static_cast<int>(t),
                              opts_.raster, &image, nullptr, &acc.scratch,
                              integrity);
        }
    };
    if (arena) {
        // Steady-state path: accumulators (and their ITU/blend scratch)
        // live in the caller's arena and are reused frame after frame.
        const size_t chunks = parallelChunkCount(tile_count, threads);
        auto &accums = arena->buffer<RasterAccum>(kKeyRasterAccums);
        if (accums.size() != chunks)
            accums.resize(chunks);
        for (RasterAccum &acc : accums)
            acc.stats = RasterStats{};
        parallelFor(tile_count, threads,
                    [&](size_t begin, size_t end, size_t chunk) {
                        rasterChunk(begin, end, accums[chunk]);
                    });
        for (const RasterAccum &acc : accums)
            local.raster += acc.stats;
    } else {
        for (const RasterAccum &a : parallelForAccumulate<RasterAccum>(
                 tile_count, threads, rasterChunk))
            local.raster += a.stats;
    }
    if (stats)
        *stats = local;
}

FrameWorkload
Renderer::extractWorkload(const GaussianScene &scene,
                          const Camera &camera) const
{
    BinnedFrame frame = prepare(scene, camera);
    return workloadFromBinned(frame, camera.resolution());
}

FrameWorkload
Renderer::workloadFromBinned(const BinnedFrame &frame, Resolution res) const
{
    FrameWorkload w;
    w.res = res;
    w.tile_size = frame.grid.tile_size;
    w.scene_gaussians = frame.feature_of_id.size();
    w.visible_gaussians = frame.features.size();
    w.instances = frame.instances;
    const int subtiles_1d = frame.grid.tile_size / opts_.raster.subtile_size;
    const int threads = resolveThreadCount(opts_.threads);
    const size_t tile_count = static_cast<size_t>(frame.grid.tileCount());
    w.tile_lengths.resize(tile_count);

    struct WorkAccum
    {
        uint64_t blend_ops = 0;
        uint64_t intersection_tests = 0;
    };
    for (const WorkAccum &a : parallelForAccumulate<WorkAccum>(
             tile_count, threads,
             [&](size_t begin, size_t end, WorkAccum &a) {
                 for (size_t t = begin; t < end; ++t) {
                     const auto &entries = frame.tiles[t];
                     w.tile_lengths[t] =
                         static_cast<uint32_t>(entries.size());
                     if (entries.empty())
                         continue;
                     a.blend_ops += estimateTileBlendOps(
                         entries, frame, static_cast<int>(t),
                         opts_.raster);
                     a.intersection_tests +=
                         entries.size() *
                         static_cast<uint64_t>(subtiles_1d) * subtiles_1d;
                 }
             })) {
        w.blend_ops += a.blend_ops;
        w.intersection_tests += a.intersection_tests;
    }
    return w;
}

} // namespace neo
