#include "gs/raster.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace neo
{

SubtileBitmap
subtileBitmap(Vec2 mean2d, float radius_px, Vec2 tile_origin, int tile_size,
              int subtile_size)
{
    const int subtiles = tile_size / subtile_size;
    const float step = static_cast<float>(subtile_size);
    const float r2 = radius_px * radius_px;
    SubtileBitmap bitmap = 0;
    int bit = 0;
    float y0 = tile_origin.y;
    for (int sy = 0; sy < subtiles; ++sy, y0 += step) {
        // Closest point of the subtile rectangle to the Gaussian center;
        // the y term is constant across the inner row.
        const float cy = clamp(mean2d.y, y0, y0 + step);
        const float dy = cy - mean2d.y;
        const float dy2 = dy * dy;
        float x0 = tile_origin.x;
        for (int sx = 0; sx < subtiles; ++sx, ++bit, x0 += step) {
            float cx = clamp(mean2d.x, x0, x0 + step);
            float dx = cx - mean2d.x;
            if (dx * dx + dy2 <= r2)
                bitmap |= (SubtileBitmap{1} << bit);
        }
    }
    return bitmap;
}

RasterStats
rasterizeTile(const std::vector<TileEntry> &entries, const BinnedFrame &frame,
              int tile, const RasterConfig &cfg, Image *image,
              std::vector<uint8_t> *valid_out, RasterScratch *scratch)
{
    RasterStats stats;
    const TileGrid &grid = frame.grid;
    const Vec2 origin = grid.tileOrigin(tile);
    const int tile_size = grid.tile_size;
    const int subtiles = tile_size / cfg.subtile_size;
    if (subtiles * subtiles > 64)
        panic("rasterizeTile: more than 64 subtiles per tile");

    stats.gaussians_in = entries.size();
    if (valid_out)
        valid_out->assign(entries.size(), 0);

    RasterScratch local;
    RasterScratch &scr = scratch ? *scratch : local;

    // SoA footprint arrays when in sync (always, for binFrame output);
    // fall back to the AoS feature records otherwise.
    const bool soa = frame.hasFeatureArrays();

    // Phase 1 (ITU): subtile bitmaps and valid bits.
    std::vector<SubtileBitmap> &bitmaps = scr.bitmaps;
    bitmaps.assign(entries.size(), 0);
    for (size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid || !frame.isVisible(entries[i].id))
            continue;
        const int32_t slot = frame.slotOf(entries[i].id);
        const Vec2 mean = soa ? frame.mean2d[slot]
                              : frame.features[slot].mean2d;
        const float radius = soa ? frame.radius_px[slot]
                                 : frame.features[slot].radius_px;
        bitmaps[i] =
            subtileBitmap(mean, radius, origin, tile_size,
                          cfg.subtile_size);
        stats.intersection_tests +=
            static_cast<uint64_t>(subtiles) * subtiles;
        if (bitmaps[i]) {
            ++stats.gaussians_blended;
            if (valid_out)
                (*valid_out)[i] = 1;
        }
    }

    if (!image) {
        // Dry run: ITU work only.
        return stats;
    }

    // Phase 2 (SCU): per-pixel front-to-back alpha blending.
    const int img_w = image->width();
    const int img_h = image->height();
    const int px0 = static_cast<int>(origin.x);
    const int py0 = static_cast<int>(origin.y);
    const int w = std::min(tile_size, img_w - px0);
    const int h = std::min(tile_size, img_h - py0);
    if (w <= 0 || h <= 0)
        return stats;

    std::vector<float> &transmittance = scr.transmittance;
    std::vector<Vec3> &accum = scr.accum;
    std::vector<uint8_t> &done = scr.done;
    transmittance.assign(static_cast<size_t>(w) * h, 1.0f);
    accum.assign(static_cast<size_t>(w) * h, Vec3{});
    done.assign(static_cast<size_t>(w) * h, 0);
    size_t live_pixels = static_cast<size_t>(w) * h;

    for (size_t i = 0; i < entries.size() && live_pixels > 0; ++i) {
        if (!bitmaps[i])
            continue;
        const ProjectedGaussian &pg = frame.featureOf(entries[i].id);
        for (int y = 0; y < h; ++y) {
            int sub_y = y / cfg.subtile_size;
            for (int x = 0; x < w; ++x) {
                int sub_x = x / cfg.subtile_size;
                int bit = sub_y * subtiles + sub_x;
                if (!(bitmaps[i] >> bit & 1))
                    continue;
                size_t pi = static_cast<size_t>(y) * w + x;
                if (done[pi])
                    continue;
                float dx = (px0 + x + 0.5f) - pg.mean2d.x;
                float dy = (py0 + y + 0.5f) - pg.mean2d.y;
                float alpha = pg.opacity * pg.falloff(dx, dy);
                if (alpha < cfg.alpha_threshold)
                    continue;
                alpha = std::min(alpha, cfg.alpha_max);
                ++stats.blend_ops;
                accum[pi] += pg.color * (alpha * transmittance[pi]);
                transmittance[pi] *= (1.0f - alpha);
                if (transmittance[pi] < cfg.transmittance_cutoff) {
                    done[pi] = 1;
                    --live_pixels;
                    ++stats.pixels_terminated;
                }
            }
        }
    }

    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            image->at(px0 + x, py0 + y) =
                accum[static_cast<size_t>(y) * w + x];
    return stats;
}

uint64_t
estimateTileBlendOps(const std::vector<TileEntry> &entries,
                     const BinnedFrame &frame, int tile,
                     const RasterConfig &cfg)
{
    const TileGrid &grid = frame.grid;
    const Vec2 origin = grid.tileOrigin(tile);
    const int tile_size = grid.tile_size;
    const int subtiles_1d = tile_size / cfg.subtile_size;
    const int subtile_count = subtiles_1d * subtiles_1d;
    const double tile_pixels = static_cast<double>(tile_size) * tile_size;

    // Walk sorted entries front to back tracking a tile-mean transmittance.
    // Each entry contributes blends over the pixels of its covered subtiles
    // that are still live; the mean alpha over a Gaussian footprint is
    // opacity * E[falloff] with E[falloff] ~= 0.45 for a 3-sigma splat.
    constexpr double kMeanFalloff = 0.45;
    const bool soa = frame.hasFeatureArrays();
    double transmittance = 1.0;
    double blend_ops = 0.0;
    for (const TileEntry &e : entries) {
        if (transmittance < cfg.transmittance_cutoff)
            break;
        if (!e.valid || !frame.isVisible(e.id))
            continue;
        const int32_t slot = frame.slotOf(e.id);
        const ProjectedGaussian &pg = frame.features[slot];
        SubtileBitmap bm = subtileBitmap(
            soa ? frame.mean2d[slot] : pg.mean2d,
            soa ? frame.radius_px[slot] : pg.radius_px, origin, tile_size,
            cfg.subtile_size);
        if (!bm)
            continue;
        double coverage =
            static_cast<double>(std::popcount(bm)) / subtile_count;
        double alpha_eff = std::min(
            static_cast<double>(pg.opacity) * kMeanFalloff,
            static_cast<double>(cfg.alpha_max));
        if (alpha_eff < cfg.alpha_threshold)
            continue;
        blend_ops += coverage * tile_pixels;
        // Only the covered fraction of the tile attenuates.
        transmittance *= (1.0 - coverage * alpha_eff);
    }
    return static_cast<uint64_t>(blend_ops);
}

} // namespace neo
