#include "gs/raster.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/integrity.h"
#include "common/logging.h"

namespace neo
{

SubtileBitmap
subtileBitmap(Vec2 mean2d, float radius_px, Vec2 tile_origin, int tile_size,
              int subtile_size)
{
    const int subtiles = tile_size / subtile_size;
    const float step = static_cast<float>(subtile_size);
    const float r2 = radius_px * radius_px;
    SubtileBitmap bitmap = 0;
    int bit = 0;
    float y0 = tile_origin.y;
    for (int sy = 0; sy < subtiles; ++sy, y0 += step) {
        // Closest point of the subtile rectangle to the Gaussian center;
        // the y term is constant across the inner row.
        const float cy = clamp(mean2d.y, y0, y0 + step);
        const float dy = cy - mean2d.y;
        const float dy2 = dy * dy;
        float x0 = tile_origin.x;
        for (int sx = 0; sx < subtiles; ++sx, ++bit, x0 += step) {
            float cx = clamp(mean2d.x, x0, x0 + step);
            float dx = cx - mean2d.x;
            if (dx * dx + dy2 <= r2)
                bitmap |= (SubtileBitmap{1} << bit);
        }
    }
    return bitmap;
}

float
fastExpNegative(float x)
{
    // exp(-87.3) already underflows float; below that the answer is 0.
    // (The negated comparison also catches NaN, which propagates as in
    // std::exp.)
    if (!(x >= -87.0f))
        return x != x ? x : 0.0f;

    // exp(x) = 2^n * e^u with n = round(x log2 e) and u = x - n ln 2
    // reduced Cody-Waite style (ln 2 split into an exactly-representable
    // high part and a small correction, so u keeps full precision even
    // when |x| is large); e^u is a degree-6 Taylor polynomial
    // (|u| <= 0.347, truncation ~1e-8) and 2^n comes from the exponent
    // bits. Every operation is plain float arithmetic in a fixed order,
    // so the result is a pure function of x on any thread.
    const float n = std::floor(x * 1.44269504f + 0.5f); // log2(e)
    const float u = (x - n * 0.693359375f) + n * 2.12194440e-4f;
    float p = 1.38888889e-3f;               // 1/720
    p = p * u + 8.33333333e-3f;             // 1/120
    p = p * u + 4.16666667e-2f;             // 1/24
    p = p * u + 1.66666667e-1f;             // 1/6
    p = p * u + 0.5f;
    p = p * u + 1.0f;
    p = p * u + 1.0f;
    const int32_t ni = static_cast<int32_t>(n); // in [-126, 1]
    const float scale =
        std::bit_cast<float>(static_cast<uint32_t>(127 + ni) << 23);
    return p * scale;
}

size_t
RasterScratch::capacityBytes() const
{
    return bitmaps.capacity() * sizeof(SubtileBitmap) +
           accum.capacity() * sizeof(Vec3) +
           done.capacity() * sizeof(uint8_t) +
           gauss_color.capacity() * sizeof(Vec3) +
           (bucket_offsets.capacity() + bucket_entries.capacity() +
            surv_idx.capacity()) *
               sizeof(uint32_t) +
           (transmittance.capacity() + gauss_mean_x.capacity() +
            gauss_mean_y.capacity() + gauss_conic_a.capacity() +
            gauss_conic_b.capacity() + gauss_conic_c.capacity() +
            gauss_opacity.capacity() + gauss_power_cut.capacity() +
            gauss_dx_bound_sq.capacity() + gauss_dy_bound_sq.capacity() +
            block_power.capacity() + block_t.capacity() +
            block_r.capacity() + block_g.capacity() + block_b.capacity() +
            block_cx.capacity() + block_cy.capacity() +
            surv_pow.capacity() + surv_exp.capacity()) *
               sizeof(float);
}

namespace
{

/**
 * Scalar Gaussian-major blend loop — the historical implementation, kept
 * behind RasterConfig::reference_path as the A/B baseline and as the
 * fallback when the frame has no SoA feature arrays or the subtile size
 * does not divide the tile size.
 */
void
blendReference(const std::vector<TileEntry> &entries,
               const BinnedFrame &frame, const RasterConfig &cfg,
               Image *image, RasterScratch &scr, RasterStats &stats,
               int px0, int py0, int w, int h, int subtiles)
{
    const bool soa = frame.hasFeatureArrays();
    const std::vector<SubtileBitmap> &bitmaps = scr.bitmaps;

    std::vector<float> &transmittance = scr.transmittance;
    std::vector<Vec3> &accum = scr.accum;
    std::vector<uint8_t> &done = scr.done;
    transmittance.assign(static_cast<size_t>(w) * h, 1.0f);
    accum.assign(static_cast<size_t>(w) * h, Vec3{});
    done.assign(static_cast<size_t>(w) * h, 0);
    size_t live_pixels = static_cast<size_t>(w) * h;

    for (size_t i = 0; i < entries.size() && live_pixels > 0; ++i) {
        if (!bitmaps[i])
            continue;
        const int32_t slot = frame.slotOf(entries[i].id);
        const ProjectedGaussian &pg = frame.features[slot];
        const Vec2 mean = soa ? frame.mean2d[slot] : pg.mean2d;
        const Vec3 conic = soa ? frame.conic[slot]
                               : Vec3{pg.conic_a, pg.conic_b, pg.conic_c};
        const float opacity = soa ? frame.opacity[slot] : pg.opacity;
        const Vec3 color = soa ? frame.color[slot] : pg.color;
        for (int y = 0; y < h; ++y) {
            int sub_y = y / cfg.subtile_size;
            for (int x = 0; x < w; ++x) {
                int sub_x = x / cfg.subtile_size;
                int bit = sub_y * subtiles + sub_x;
                if (!(bitmaps[i] >> bit & 1))
                    continue;
                size_t pi = static_cast<size_t>(y) * w + x;
                if (done[pi])
                    continue;
                float dx = (px0 + x + 0.5f) - mean.x;
                float dy = (py0 + y + 0.5f) - mean.y;
                float power =
                    conicPower(conic.x, conic.y, conic.z, dx, dy);
                float falloff =
                    power > 0.0f
                        ? 0.0f
                        : (cfg.fast_exp ? fastExpNegative(power)
                                        : std::exp(power));
                float alpha = opacity * falloff;
                if (alpha < cfg.alpha_threshold)
                    continue;
                alpha = std::min(alpha, cfg.alpha_max);
                ++stats.blend_ops;
                accum[pi] += color * (alpha * transmittance[pi]);
                transmittance[pi] *= (1.0f - alpha);
                if (transmittance[pi] < cfg.transmittance_cutoff) {
                    done[pi] = 1;
                    --live_pixels;
                    ++stats.pixels_terminated;
                }
            }
        }
    }

    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            image->at(px0 + x, py0 + y) =
                accum[static_cast<size_t>(y) * w + x];
}

/**
 * Subtile-blocked blend kernel. Instead of scanning every tile pixel for
 * every Gaussian, the tile's valid entries are bucketed per subtile
 * (CSR, driven by the phase-1 bitmaps) and each subtile's pixel block is
 * blended to completion in contiguous SoA planes:
 *
 *  1. compact the covering Gaussians' hot fields into per-field arrays
 *     (front-to-back order preserved) and build the CSR buckets;
 *  2. per block and Gaussian, a survivor-batched pipeline replaces the
 *     historical test->exp->blend pixel loop:
 *       a. one vectorizable pass evaluates the conic power for all block
 *          pixels from precomputed pixel-center coordinates (no divides,
 *          no bitmap tests in the inner loop);
 *       b. a branch-free compaction gathers the indices and powers of
 *          the pixels that reach the exp — inside the log-domain
 *          threshold cut and not yet saturated — into a dense survivor
 *          list;
 *       c. the falloff exp is evaluated over the whole survivor batch in
 *          one contiguous loop: with fast_exp the branchless
 *          fastExpNegativeLane polynomial over lists tail-padded with
 *          neutral lanes to a kSurvivorExpBatch multiple (fixed-width
 *          groups, no scalar epilogue — the SIMD target of
 *          bench/check_vectorization.sh), otherwise std::exp over the
 *          same dense list;
 *       d. alpha/transmittance/color blends apply in survivor order.
 *  3. a per-block live counter retires all remaining Gaussians at once
 *     when every pixel of the block has saturated.
 *
 * Per-pixel blend order and arithmetic are exactly those of
 * blendReference — a pixel's result depends only on the ordered set of
 * Gaussians covering its subtile, which the buckets preserve, and the
 * survivor list keeps ascending pixel order with each pixel appearing at
 * most once per Gaussian, so splitting the test from the blend cannot
 * reorder or change any float operation — and pixels and stats come out
 * bit-identical (the done[] test is replaced by the equivalent
 * transmittance < cutoff predicate, applied at compaction time).
 *
 * Integrity: with an enabled context, the CSR bucket bounds are fenced
 * right after the scatter (digest recomputation plus monotonicity /
 * bounds invariants). A corrupted CSR cannot be consumed safely — its
 * bounds index the bucket array — so on mismatch the function records
 * the fault and returns false *before any pixel write*; the caller then
 * blends the tile through the scalar reference path, which depends only
 * on the (separately fenced) tile entry list and produces bit-identical
 * pixels. Returns true when the tile was blended here.
 */
bool
blendBlocked(const std::vector<TileEntry> &entries, const BinnedFrame &frame,
             const RasterConfig &cfg, Image *image, RasterScratch &scr,
             RasterStats &stats, int px0, int py0, int w, int h,
             int subtiles, int tile, IntegrityContext *integrity)
{
    const std::vector<SubtileBitmap> &bitmaps = scr.bitmaps;
    const int sub = cfg.subtile_size;
    const int subtile_count = subtiles * subtiles;
    const size_t block_cap = static_cast<size_t>(sub) * sub;

    // --- Bucket sizes and the compacted-Gaussian count. Entries whose
    // peak alpha cannot reach the threshold (opacity < threshold implies
    // alpha = opacity * falloff <= opacity for falloff in [0, 1]) never
    // blend in the reference loop either and are dropped here.
    std::vector<uint32_t> &offsets = scr.bucket_offsets;
    offsets.assign(static_cast<size_t>(subtile_count) + 1, 0);
    uint32_t active = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        SubtileBitmap bm = bitmaps[i];
        if (!bm)
            continue;
        if (frame.opacity[frame.slotOf(entries[i].id)] <
            cfg.alpha_threshold)
            continue;
        ++active;
        while (bm) {
            ++offsets[std::countr_zero(bm) + 1];
            bm &= bm - 1;
        }
    }
    for (int b = 0; b < subtile_count; ++b)
        offsets[b + 1] += offsets[b];
    const uint32_t total_refs = offsets[subtile_count];

    // --- Compact the hot Gaussian fields into SoA arrays (front-to-back
    // order) and scatter the bucket entries; afterwards bucket b spans
    // [b ? offsets[b-1] : 0, offsets[b]).
    scr.gauss_mean_x.resize(active);
    scr.gauss_mean_y.resize(active);
    scr.gauss_conic_a.resize(active);
    scr.gauss_conic_b.resize(active);
    scr.gauss_conic_c.resize(active);
    scr.gauss_opacity.resize(active);
    scr.gauss_power_cut.resize(active);
    scr.gauss_dx_bound_sq.resize(active);
    scr.gauss_dy_bound_sq.resize(active);
    scr.gauss_color.resize(active);
    scr.bucket_entries.resize(total_refs);
    // The skip cut: power < log(threshold / opacity) - 1/16 guarantees
    // alpha < threshold, so skipping the exp there cannot change which
    // pixels blend. The 2^-4 margin (exact in float) is ~4 orders of
    // magnitude above everything it must swamp — the <= 1-ulp rounding
    // of the two logs and the subtractions, and the relative error of
    // the falloff exp itself (std::exp <= 1 ulp, fastExpNegative <=
    // kFastExpMaxRelError = 2e-6): a skipped pixel's alpha is below
    // e^(-1/16) * threshold * (1 + ~1e-5) < 0.94 * threshold.
    const float log_threshold = std::log(cfg.alpha_threshold);
    uint32_t j = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        SubtileBitmap bm = bitmaps[i];
        if (!bm)
            continue;
        const int32_t slot = frame.slotOf(entries[i].id);
        const float opacity = frame.opacity[slot];
        if (opacity < cfg.alpha_threshold)
            continue;
        const Vec2 mean = frame.mean2d[slot];
        const Vec3 conic = frame.conic[slot];
        scr.gauss_mean_x[j] = mean.x;
        scr.gauss_mean_y[j] = mean.y;
        scr.gauss_conic_a[j] = conic.x;
        scr.gauss_conic_b[j] = conic.y;
        scr.gauss_conic_c[j] = conic.z;
        scr.gauss_opacity[j] = opacity;
        scr.gauss_color[j] = frame.color[slot];
        const float cut_j = log_threshold - std::log(opacity) - 0.0625f;
        scr.gauss_power_cut[j] = cut_j;
        // Conservative squared half-extents of the cut ellipse: for a
        // fixed dy the power maximizes (over real dx) at
        // -dy^2 * det / (2a), so rows with dy^2 > -2a*cut/det cannot
        // contain a pixel reaching the cut (columns symmetrically with
        // c). Two safeguards keep the prune strictly conservative
        // against float rounding of the kernel's power evaluation:
        // the products and det are computed in double (exact for float
        // inputs, so the notorious a*c - b*b cancellation cannot
        // amplify error), and pruning is enabled only when
        // det >= 2^-10 * (a*c). That conditioning guard bounds the
        // magnitude of the power terms at any near-cut pixel by
        // ~2 * (a*c/det) * |cut| <= 2^11 * |cut|; with ~8 roundings of
        // <= 2^-24 each in conicPower, the float evaluation's absolute
        // error stays below ~2^-10 * |cut|, and the 1 + 2^-7 bound
        // inflation leaves an 8x margin over that worst case (|cut| >=
        // the 2^-4 cut margin by construction). Ill-conditioned,
        // degenerate or NaN conics get infinite bounds (no pruning)
        // and flow through the full-block path.
        const double ad = conic.x, bd = conic.y, cd = conic.z;
        const double det = ad * cd - bd * bd;
        float dx_bound_sq = std::numeric_limits<float>::infinity();
        float dy_bound_sq = dx_bound_sq;
        if (conic.x > 0.0f && conic.z > 0.0f &&
            det > 0x1p-10 * (ad * cd) && cut_j < 0.0f) {
            const double s =
                -2.0 * static_cast<double>(cut_j) / det * 1.0078125;
            dy_bound_sq = static_cast<float>(ad * s);
            dx_bound_sq = static_cast<float>(cd * s);
        }
        scr.gauss_dx_bound_sq[j] = dx_bound_sq;
        scr.gauss_dy_bound_sq[j] = dy_bound_sq;
        while (bm) {
            scr.bucket_entries[offsets[std::countr_zero(bm)]++] = j;
            bm &= bm - 1;
        }
        ++j;
    }

    if (integrity) {
        // CSR fence: duplicate-compute the bounds digest across the
        // injection window, then check the structural invariants the
        // block loops rely on. Everything below is O(subtiles + refs)
        // over data already hot in cache.
        const uint64_t d0 = digestSpan(offsets.data(), offsets.size());
        faultinject::corrupt(kIntegrityRasterCsr, tile, offsets.data(),
                             offsets.size(), sizeof(uint32_t),
                             sizeof(uint32_t));
        const uint64_t d1 = digestSpan(offsets.data(), offsets.size());
        bool ok = d0 == d1;
        // After the scatter, bucket b spans [b ? offsets[b-1] : 0,
        // offsets[b]): bounds must be monotone, end at total_refs, and
        // every bucket entry must index a compacted Gaussian.
        uint32_t prev = 0;
        for (int b = 0; ok && b < subtile_count; ++b) {
            if (offsets[b] < prev || offsets[b] > total_refs)
                ok = false;
            prev = offsets[b];
        }
        ok = ok && offsets[subtile_count] == total_refs;
        for (uint32_t k = 0; ok && k < total_refs; ++k)
            if (scr.bucket_entries[k] >= active)
                ok = false;
        if (!ok) {
            // Detected before any pixel write; the reference fallback
            // re-blends the tile from intact inputs, so the tile is
            // recovered regardless of mode.
            integrity->recordFault(IntegrityStage::Raster,
                                   kIntegrityRasterCsr, tile, d0, d1,
                                   true);
            return false;
        }
        integrity->noteCheck();
    }

    scr.block_power.resize(block_cap);
    scr.block_t.resize(block_cap);
    scr.block_r.resize(block_cap);
    scr.block_g.resize(block_cap);
    scr.block_b.resize(block_cap);
    scr.block_cx.resize(block_cap);
    scr.block_cy.resize(block_cap);
    // Survivor batch, with slack for the neutral tail padding.
    scr.surv_idx.resize(block_cap + kSurvivorExpBatch);
    scr.surv_pow.resize(block_cap + kSurvivorExpBatch);
    scr.surv_exp.resize(block_cap + kSurvivorExpBatch);

    const int sub_cols = (w + sub - 1) / sub;
    const int sub_rows = (h + sub - 1) / sub;
    for (int sy = 0; sy < sub_rows; ++sy) {
        const int y0 = sy * sub;
        const int bh = std::min(sub, h - y0);
        for (int sx = 0; sx < sub_cols; ++sx) {
            const int x0 = sx * sub;
            const int bw = std::min(sub, w - x0);
            const int npix = bw * bh;
            const int bit = sy * subtiles + sx;
            const uint32_t begin = bit ? offsets[bit - 1] : 0;
            const uint32_t end = offsets[bit];

            if (begin == end) {
                // No Gaussian covers this subtile: background pixels.
                for (int by = 0; by < bh; ++by) {
                    Vec3 *row = &image->at(px0 + x0, py0 + y0 + by);
                    std::fill_n(row, bw, Vec3{});
                }
                continue;
            }

            // Pixel-center coordinates of the block, flattened row-major.
            // Same construction as the reference ((int + int) converted,
            // then + 0.5f), so the centers are bit-identical.
            float *const __restrict cx = scr.block_cx.data();
            float *const __restrict cy = scr.block_cy.data();
            for (int by = 0; by < bh; ++by) {
                const float fy =
                    static_cast<float>(py0 + y0 + by) + 0.5f;
                for (int bx = 0; bx < bw; ++bx) {
                    cx[by * bw + bx] =
                        static_cast<float>(px0 + x0 + bx) + 0.5f;
                    cy[by * bw + bx] = fy;
                }
            }

            // __restrict: the scratch planes are distinct vectors, and
            // telling the compiler so spares every vectorized loop its
            // runtime aliasing version.
            float *const __restrict pw = scr.block_power.data();
            float *const __restrict bt = scr.block_t.data();
            float *const __restrict br = scr.block_r.data();
            float *const __restrict bg = scr.block_g.data();
            float *const __restrict bb = scr.block_b.data();
            uint32_t *const __restrict sidx = scr.surv_idx.data();
            float *const __restrict spow = scr.surv_pow.data();
            float *const __restrict sexp = scr.surv_exp.data();
            const float cx0f = static_cast<float>(px0 + x0) + 0.5f;
            const float cy0f = static_cast<float>(py0 + y0) + 0.5f;
            std::fill_n(bt, npix, 1.0f);
            std::fill_n(br, npix, 0.0f);
            std::fill_n(bg, npix, 0.0f);
            std::fill_n(bb, npix, 0.0f);
            int live = npix;

            for (uint32_t k = begin; k < end; ++k) {
                const uint32_t g = scr.bucket_entries[k];
                const float mx = scr.gauss_mean_x[g];
                const float my = scr.gauss_mean_y[g];
                const float ca = scr.gauss_conic_a[g];
                const float cb = scr.gauss_conic_b[g];
                const float cc = scr.gauss_conic_c[g];
                const float opacity = scr.gauss_opacity[g];
                const float cut = scr.gauss_power_cut[g];

                // Ellipse-extent prune. The phase-1 bitmap tests the
                // circumscribed 3-sigma circle, but the conic is
                // anisotropic — a thin ellipse often misses most (or
                // all) pixels of a subtile whose corner clips the
                // circle. The conservative squared half-extents bound
                // which pixels can reach the cut: first the nearest
                // column decides whether the block can contain a
                // survivor at all, then the row scan narrows the pixel
                // range to the rows the cut ellipse touches — all
                // before any power is evaluated. Every comparison is
                // written so NaN keeps the pixel (prune only on a
                // provable miss).
                const float dxn =
                    clamp(mx, cx0f,
                          cx0f + static_cast<float>(bw - 1)) -
                    mx;
                if (dxn * dxn > scr.gauss_dx_bound_sq[g])
                    continue; // no column can reach the cut
                const float dy_bsq = scr.gauss_dy_bound_sq[g];
                int by_lo = 0;
                while (by_lo < bh) {
                    const float dy =
                        (cy0f + static_cast<float>(by_lo)) - my;
                    if (!(dy * dy > dy_bsq))
                        break;
                    ++by_lo;
                }
                if (by_lo == bh)
                    continue; // no row can reach the cut
                int by_hi = bh - 1;
                while (by_hi > by_lo) {
                    const float dy =
                        (cy0f + static_cast<float>(by_hi)) - my;
                    if (!(dy * dy > dy_bsq))
                        break;
                    --by_hi;
                }
                const int p_lo = by_lo * bw;
                const int p_hi = (by_hi + 1) * bw;

                // Conic power for every candidate pixel: contiguous
                // streams, no branches — an auto-vectorization target
                // (see bench/check_vectorization.sh). The same pass
                // OR-folds the block-level retire predicate for the
                // rows that survived the extent prune; NaN powers
                // conservatively read as reaching (!(NaN < cut) is
                // true), exactly like the per-pixel test below.
                unsigned any_reach = 0;
                for (int p = p_lo; p < p_hi; ++p) {
                    const float dx = cx[p] - mx;
                    const float dy = cy[p] - my;
                    const float power = conicPower(ca, cb, cc, dx, dy);
                    pw[p] = power;
                    any_reach |= static_cast<unsigned>(!(power < cut));
                }
                if (!any_reach)
                    continue;

                // Survivor compaction: gather the pixels that reach the
                // exp. Below the cut alpha cannot reach the threshold;
                // above zero the falloff is defined as 0; a saturated
                // pixel (== the reference's done[] test) never blends.
                // NaN fails every < / > test and so survives, flowing
                // through the exact path as in the reference. The write
                // is unconditional and the index advances by the
                // predicate — no branch to mispredict, and each pixel
                // appears at most once, in ascending order.
                uint32_t n_surv = 0;
                for (int p = p_lo; p < p_hi; ++p) {
                    const float power = pw[p];
                    const unsigned keep =
                        static_cast<unsigned>(!(power < cut)) &
                        static_cast<unsigned>(!(power > 0.0f)) &
                        static_cast<unsigned>(
                            !(bt[p] < cfg.transmittance_cutoff));
                    sidx[n_surv] = static_cast<uint32_t>(p);
                    spow[n_surv] = power;
                    n_surv += keep;
                }
                if (n_surv == 0)
                    continue;

                // Falloff exp across the whole survivor batch. The fast
                // path pads the tail with neutral lanes up to a
                // kSurvivorExpBatch multiple, so the polynomial loop
                // runs whole fixed-width groups — the auto-vectorization
                // target (see bench/check_vectorization.sh). The exact
                // path calls std::exp over the same dense list (scalar,
                // but with the test branches already resolved).
                if (cfg.fast_exp) {
                    const uint32_t n_pad =
                        (n_surv + kSurvivorExpBatch - 1) &
                        ~(kSurvivorExpBatch - 1);
                    for (uint32_t i = n_surv; i < n_pad; ++i)
                        spow[i] = -1.0f;
                    // One flat loop over the padded batch: GCC 12
                    // vectorizes this form, but not a nested
                    // fixed-width-inner version (the unrolled inner
                    // body defeats its data-ref analysis).
                    for (uint32_t i = 0; i < n_pad; ++i)
                        sexp[i] = fastExpNegativeLane(spow[i]);
                } else {
                    for (uint32_t i = 0; i < n_surv; ++i)
                        sexp[i] = std::exp(spow[i]);
                }

                // Blend in survivor order — identical per-pixel float
                // sequence as the historical fused loop, only the
                // already-false tests are gone.
                const Vec3 color = scr.gauss_color[g];
                uint64_t ops = 0;
                for (uint32_t i = 0; i < n_surv; ++i) {
                    const uint32_t p = sidx[i];
                    float alpha = opacity * sexp[i];
                    if (alpha < cfg.alpha_threshold)
                        continue;
                    alpha = std::min(alpha, cfg.alpha_max);
                    ++ops;
                    const float t = bt[p];
                    const float wgt = alpha * t;
                    br[p] += color.x * wgt;
                    bg[p] += color.y * wgt;
                    bb[p] += color.z * wgt;
                    const float nt = t * (1.0f - alpha);
                    bt[p] = nt;
                    if (nt < cfg.transmittance_cutoff) {
                        --live;
                        ++stats.pixels_terminated;
                    }
                }
                stats.blend_ops += ops;
                if (live == 0)
                    break; // block saturated: retire the remaining list
            }

            for (int by = 0; by < bh; ++by) {
                Vec3 *row = &image->at(px0 + x0, py0 + y0 + by);
                for (int bx = 0; bx < bw; ++bx) {
                    const int p = by * bw + bx;
                    row[bx] = Vec3{br[p], bg[p], bb[p]};
                }
            }
        }
    }
    return true;
}

} // namespace

RasterStats
rasterizeTile(const std::vector<TileEntry> &entries, const BinnedFrame &frame,
              int tile, const RasterConfig &cfg, Image *image,
              std::vector<uint8_t> *valid_out, RasterScratch *scratch,
              IntegrityContext *integrity)
{
    if (integrity && !integrity->enabled())
        integrity = nullptr;
    RasterStats stats;
    const TileGrid &grid = frame.grid;
    const Vec2 origin = grid.tileOrigin(tile);
    const int tile_size = grid.tile_size;
    const int subtiles = tile_size / cfg.subtile_size;
    if (subtiles * subtiles > 64)
        panic("rasterizeTile: more than 64 subtiles per tile");

    stats.gaussians_in = entries.size();
    if (valid_out)
        valid_out->assign(entries.size(), 0);

    RasterScratch local;
    RasterScratch &scr = scratch ? *scratch : local;

    // SoA footprint arrays when in sync (always, for binFrame output);
    // fall back to the AoS feature records otherwise.
    const bool soa = frame.hasFeatureArrays();

    // Phase 1 (ITU): subtile bitmaps and valid bits.
    std::vector<SubtileBitmap> &bitmaps = scr.bitmaps;
    bitmaps.assign(entries.size(), 0);
    for (size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid || !frame.isVisible(entries[i].id))
            continue;
        const int32_t slot = frame.slotOf(entries[i].id);
        const Vec2 mean = soa ? frame.mean2d[slot]
                              : frame.features[slot].mean2d;
        const float radius = soa ? frame.radius_px[slot]
                                 : frame.features[slot].radius_px;
        bitmaps[i] =
            subtileBitmap(mean, radius, origin, tile_size,
                          cfg.subtile_size);
        stats.intersection_tests +=
            static_cast<uint64_t>(subtiles) * subtiles;
        if (bitmaps[i]) {
            ++stats.gaussians_blended;
            if (valid_out)
                (*valid_out)[i] = 1;
        }
    }

    if (!image) {
        // Dry run: ITU work only.
        return stats;
    }

    // Phase 2 (SCU): per-pixel front-to-back alpha blending.
    const int img_w = image->width();
    const int img_h = image->height();
    const int px0 = static_cast<int>(origin.x);
    const int py0 = static_cast<int>(origin.y);
    const int w = std::min(tile_size, img_w - px0);
    const int h = std::min(tile_size, img_h - py0);
    if (w <= 0 || h <= 0)
        return stats;

    const bool blocked = soa && !cfg.reference_path &&
                         tile_size % cfg.subtile_size == 0;
    // blendBlocked returns false only when its integrity fence caught a
    // corrupted CSR (before any pixel write); the reference blend then
    // re-renders the tile from the intact entry list.
    if (!blocked ||
        !blendBlocked(entries, frame, cfg, image, scr, stats, px0, py0, w,
                      h, subtiles, tile, integrity))
        blendReference(entries, frame, cfg, image, scr, stats, px0, py0,
                       w, h, subtiles);
    return stats;
}

uint64_t
estimateTileBlendOps(const std::vector<TileEntry> &entries,
                     const BinnedFrame &frame, int tile,
                     const RasterConfig &cfg)
{
    const TileGrid &grid = frame.grid;
    const Vec2 origin = grid.tileOrigin(tile);
    const int tile_size = grid.tile_size;
    const int subtiles_1d = tile_size / cfg.subtile_size;
    const int subtile_count = subtiles_1d * subtiles_1d;
    const double tile_pixels = static_cast<double>(tile_size) * tile_size;

    // Walk sorted entries front to back tracking a tile-mean transmittance.
    // Each entry contributes blends over the pixels of its covered subtiles
    // that are still live; the mean alpha over a Gaussian footprint is
    // opacity * E[falloff] with E[falloff] ~= 0.45 for a 3-sigma splat.
    constexpr double kMeanFalloff = 0.45;
    const bool soa = frame.hasFeatureArrays();
    double transmittance = 1.0;
    double blend_ops = 0.0;
    for (const TileEntry &e : entries) {
        if (transmittance < cfg.transmittance_cutoff)
            break;
        if (!e.valid || !frame.isVisible(e.id))
            continue;
        const int32_t slot = frame.slotOf(e.id);
        const float opacity =
            soa ? frame.opacity[slot] : frame.features[slot].opacity;
        SubtileBitmap bm = subtileBitmap(
            soa ? frame.mean2d[slot] : frame.features[slot].mean2d,
            soa ? frame.radius_px[slot] : frame.features[slot].radius_px,
            origin, tile_size, cfg.subtile_size);
        if (!bm)
            continue;
        double coverage =
            static_cast<double>(std::popcount(bm)) / subtile_count;
        double alpha_eff = std::min(
            static_cast<double>(opacity) * kMeanFalloff,
            static_cast<double>(cfg.alpha_max));
        if (alpha_eff < cfg.alpha_threshold)
            continue;
        blend_ops += coverage * tile_pixels;
        // Only the covered fraction of the tile attenuates.
        transmittance *= (1.0 - coverage * alpha_eff);
    }
    return static_cast<uint64_t>(blend_ops);
}

} // namespace neo
