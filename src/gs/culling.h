/**
 * @file
 * Frustum culling — stage 1 of the 3DGS pipeline. Gaussians whose 3-sigma
 * bounding sphere lies outside the camera frustum are discarded before
 * feature extraction.
 */

#ifndef NEO_GS_CULLING_H
#define NEO_GS_CULLING_H

#include <cstddef>
#include <vector>

#include "gs/camera.h"
#include "gs/gaussian.h"

namespace neo
{

/** Result of culling a scene against one camera. */
struct CullResult
{
    /** Ids of Gaussians that survive culling, in scene order. */
    std::vector<GaussianId> visible;
    size_t total = 0;

    double visibleFraction() const
    {
        return total ? static_cast<double>(visible.size()) / total : 0.0;
    }
};

/**
 * Conservative sphere-vs-frustum test for a single Gaussian.
 * @param margin multiplier (>1 widens the frustum; used by the duplication
 *        unit to keep Gaussians that may enter the view next frame).
 */
bool inFrustum(const Gaussian &g, const Camera &camera, float margin = 1.0f);

/**
 * Cull an entire scene. The visible list is always in ascending scene
 * order: with threads > 1 the scene is split into contiguous id chunks
 * whose per-chunk results are concatenated in chunk order, so the output
 * is identical for any thread count.
 *
 * @param threads requested thread count (resolveThreadCount semantics:
 *        0 defers to NEO_THREADS, default serial)
 */
CullResult cullScene(const GaussianScene &scene, const Camera &camera,
                     float margin = 1.0f, int threads = 0);

} // namespace neo

#endif // NEO_GS_CULLING_H
