/**
 * @file
 * Peak signal-to-noise ratio between two rendered images.
 */

#ifndef NEO_METRICS_PSNR_H
#define NEO_METRICS_PSNR_H

#include "common/image.h"

namespace neo
{

/** Mean squared error over all channels; images must match in size. */
double meanSquaredError(const Image &reference, const Image &test);

/**
 * PSNR in dB against a peak value of 1.0 (linear float images). Identical
 * images return +infinity capped at @p cap_db for printable output.
 */
double psnr(const Image &reference, const Image &test, double cap_db = 99.0);

} // namespace neo

#endif // NEO_METRICS_PSNR_H
