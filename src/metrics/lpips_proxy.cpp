#include "metrics/lpips_proxy.h"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "metrics/ssim.h"

namespace neo
{

namespace
{

/** Horizontal/vertical Sobel responses of a luma plane. */
struct GradientField
{
    std::vector<float> gx;
    std::vector<float> gy;
};

GradientField
sobel(const std::vector<float> &luma, int w, int h)
{
    GradientField g;
    g.gx.assign(luma.size(), 0.0f);
    g.gy.assign(luma.size(), 0.0f);
    auto at = [&](int x, int y) {
        x = clamp(x, 0, w - 1);
        y = clamp(y, 0, h - 1);
        return luma[static_cast<size_t>(y) * w + x];
    };
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float gx = (at(x + 1, y - 1) + 2.0f * at(x + 1, y) +
                        at(x + 1, y + 1)) -
                       (at(x - 1, y - 1) + 2.0f * at(x - 1, y) +
                        at(x - 1, y + 1));
            float gy = (at(x - 1, y + 1) + 2.0f * at(x, y + 1) +
                        at(x + 1, y + 1)) -
                       (at(x - 1, y - 1) + 2.0f * at(x, y - 1) +
                        at(x + 1, y - 1));
            size_t i = static_cast<size_t>(y) * w + x;
            g.gx[i] = gx;
            g.gy[i] = gy;
        }
    }
    return g;
}

/**
 * Normalized feature distance between two gradient fields: per-pixel unit
 * normalization of the (gx, gy, |g|) feature vector followed by mean
 * squared distance, which is the LPIPS recipe applied to hand features.
 */
double
featureDistance(const GradientField &a, const GradientField &b)
{
    if (a.gx.empty())
        return 0.0;
    double acc = 0.0;
    const float eps = 1e-6f;
    for (size_t i = 0; i < a.gx.size(); ++i) {
        float ma = std::sqrt(a.gx[i] * a.gx[i] + a.gy[i] * a.gy[i]);
        float mb = std::sqrt(b.gx[i] * b.gx[i] + b.gy[i] * b.gy[i]);
        float na = ma + eps;
        float nb = mb + eps;
        float fa[3] = {a.gx[i] / na, a.gy[i] / na, ma};
        float fb[3] = {b.gx[i] / nb, b.gy[i] / nb, mb};
        for (int k = 0; k < 3; ++k) {
            float d = fa[k] - fb[k];
            acc += d * d;
        }
    }
    return acc / (3.0 * static_cast<double>(a.gx.size()));
}

} // namespace

double
lpipsProxy(const Image &reference, const Image &test)
{
    if (reference.width() != test.width() ||
        reference.height() != test.height()) {
        panic("lpipsProxy: image size mismatch");
    }
    if (reference.empty())
        return 0.0;

    Image ref = reference;
    Image tst = test;
    double grad_term = 0.0;
    int levels = 0;
    for (int level = 0; level < 3; ++level) {
        GradientField ga = sobel(ref.luma(), ref.width(), ref.height());
        GradientField gb = sobel(tst.luma(), tst.width(), tst.height());
        grad_term += featureDistance(ga, gb);
        ++levels;
        Image r2 = ref.downsample2x();
        Image t2 = tst.downsample2x();
        if (r2.empty() || t2.empty())
            break;
        ref = std::move(r2);
        tst = std::move(t2);
    }
    grad_term /= static_cast<double>(levels);

    double structural = 1.0 - ssim(reference, test);

    // Weights chosen so that typical 3DGS ordering corruption lands in the
    // 0.1-0.6 range, matching the magnitude of learned LPIPS on the same
    // artifacts; identical inputs give exactly zero.
    return 2.0 * grad_term + 0.5 * structural;
}

} // namespace neo
