/**
 * @file
 * Deterministic stand-in for the learned LPIPS perceptual metric.
 *
 * The paper reports LPIPS deltas of <= 0.001 between full re-sorting and
 * Neo's reuse-and-update sorting (Table 2). We cannot ship the AlexNet/VGG
 * weights LPIPS depends on, so this proxy measures the same class of
 * artifacts (local ordering/blending errors) with a hand-built multi-scale
 * feature distance:
 *
 *   - a 3-level image pyramid (box-filtered), mimicking receptive-field
 *     growth across network layers;
 *   - per-level gradient-magnitude and oriented-gradient "features",
 *     mimicking early conv features;
 *   - normalized L2 distance per level, averaged across levels, plus a
 *     structural (1 - SSIM) term.
 *
 * The absolute scale differs from learned LPIPS but is calibrated to the
 * same range (identical images -> 0; strong corruption -> ~0.6), and it is
 * monotone in rendering-order error, which is all the reproduction needs.
 */

#ifndef NEO_METRICS_LPIPS_PROXY_H
#define NEO_METRICS_LPIPS_PROXY_H

#include "common/image.h"

namespace neo
{

/** Perceptual distance in [0, ~1]; 0 for identical images. */
double lpipsProxy(const Image &reference, const Image &test);

} // namespace neo

#endif // NEO_METRICS_LPIPS_PROXY_H
