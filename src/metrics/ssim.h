/**
 * @file
 * Structural similarity (SSIM) on the luma plane with the standard 8x8
 * windowed formulation. Included both as a quality metric in its own right
 * and as the structural term of the LPIPS proxy.
 */

#ifndef NEO_METRICS_SSIM_H
#define NEO_METRICS_SSIM_H

#include "common/image.h"

namespace neo
{

/**
 * Mean SSIM over non-overlapping 8x8 luma windows. Returns 1.0 for
 * identical images; images must match in size.
 */
double ssim(const Image &reference, const Image &test);

} // namespace neo

#endif // NEO_METRICS_SSIM_H
