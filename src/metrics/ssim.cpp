#include "metrics/ssim.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace neo
{

double
ssim(const Image &reference, const Image &test)
{
    if (reference.width() != test.width() ||
        reference.height() != test.height()) {
        panic("ssim: image size mismatch");
    }
    if (reference.empty())
        return 1.0;

    const int w = reference.width();
    const int h = reference.height();
    const std::vector<float> la = reference.luma();
    const std::vector<float> lb = test.luma();

    // Standard SSIM stabilizers for a dynamic range of 1.0.
    const double c1 = 0.01 * 0.01;
    const double c2 = 0.03 * 0.03;
    const int win = 8;

    double acc = 0.0;
    size_t windows = 0;
    for (int y0 = 0; y0 + win <= h; y0 += win) {
        for (int x0 = 0; x0 + win <= w; x0 += win) {
            double sum_a = 0.0, sum_b = 0.0;
            double sum_aa = 0.0, sum_bb = 0.0, sum_ab = 0.0;
            for (int y = y0; y < y0 + win; ++y) {
                for (int x = x0; x < x0 + win; ++x) {
                    double a = la[static_cast<size_t>(y) * w + x];
                    double b = lb[static_cast<size_t>(y) * w + x];
                    sum_a += a;
                    sum_b += b;
                    sum_aa += a * a;
                    sum_bb += b * b;
                    sum_ab += a * b;
                }
            }
            const double n = win * win;
            double mu_a = sum_a / n;
            double mu_b = sum_b / n;
            double var_a = sum_aa / n - mu_a * mu_a;
            double var_b = sum_bb / n - mu_b * mu_b;
            double cov = sum_ab / n - mu_a * mu_b;
            double num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
            double den = (mu_a * mu_a + mu_b * mu_b + c1) *
                         (var_a + var_b + c2);
            acc += num / den;
            ++windows;
        }
    }
    return windows ? acc / static_cast<double>(windows) : 1.0;
}

} // namespace neo
