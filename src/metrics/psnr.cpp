#include "metrics/psnr.h"

#include <cmath>
#include <cstddef>

#include "common/logging.h"

namespace neo
{

double
meanSquaredError(const Image &reference, const Image &test)
{
    if (reference.width() != test.width() ||
        reference.height() != test.height()) {
        panic("meanSquaredError: image size mismatch (%dx%d vs %dx%d)",
              reference.width(), reference.height(), test.width(),
              test.height());
    }
    if (reference.empty())
        return 0.0;
    const auto &a = reference.pixels();
    const auto &b = test.pixels();
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double dx = a[i].x - b[i].x;
        double dy = a[i].y - b[i].y;
        double dz = a[i].z - b[i].z;
        acc += dx * dx + dy * dy + dz * dz;
    }
    return acc / (3.0 * static_cast<double>(a.size()));
}

double
psnr(const Image &reference, const Image &test, double cap_db)
{
    double mse = meanSquaredError(reference, test);
    if (mse <= 0.0)
        return cap_db;
    double v = 10.0 * std::log10(1.0 / mse);
    return v > cap_db ? cap_db : v;
}

} // namespace neo
